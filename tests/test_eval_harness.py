"""Tests for the evaluation harness itself (E1/E2 correctness, reporting)."""

import pytest

from repro.eval.experiments import PAPER_TABLE1, run_complexity_comparison, run_table1_accel_l1
from repro.eval.overheads import analytic_storage_bits
from repro.eval.report import format_table, normalize_rows


def test_table1_reproduced_exactly():
    result = run_table1_accel_l1()
    assert len(result["rows"]) == len(PAPER_TABLE1) == 24
    for row in result["rows"]:
        assert row["implemented"] not in ("MISSING", "UNEXPECTED"), row


def test_complexity_rows_match_paper_claims():
    rows = run_complexity_comparison()
    accel = rows[0]
    assert accel["stable_states"] == 4
    assert accel["transient_states"] == 1
    assert accel["incoming_requests"] == 1
    assert accel["incoming_responses"] == 4
    assert accel["outgoing_requests"] == 5
    mesi = rows[1]
    assert mesi["transient_states"] > accel["transient_states"]
    hammer = rows[2]
    assert hammer["transitions"] > accel["transitions"]


def test_analytic_storage_paper_datapoint():
    """Section 2.3.1: 256kB accel cache, 64B blocks -> ~16kB of tags."""
    bits = analytic_storage_bits(256)
    kib = bits["full_state_bits"] / 8 / 1024
    assert 14 <= kib <= 17


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="t")
    lines = out.splitlines()
    assert lines[0] == "t"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_normalize_rows():
    rows = [
        {"config": "base", "ticks": 100},
        {"config": "other", "ticks": 150},
    ]
    normalize_rows(rows, "ticks", "base")
    assert rows[0]["ticks_norm"] == 1.0
    assert rows[1]["ticks_norm"] == 1.5
    with pytest.raises(ValueError):
        normalize_rows(rows, "ticks", "missing")
