"""Differential test: compiled dispatch table vs the legacy declared view.

The compiled fast path flattens ``transitions`` into a dense per-state
dict at ``recompile_dispatch`` time. These tests enumerate every compiled
(state, event) entry of every controller in every built system and check
it agrees with the legacy ``has_transition`` / ``possible_transitions``
view — same pairs, same bound handlers, nothing added, nothing dropped.
"""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system


def _small_config(host, org):
    return SystemConfig(
        host=host,
        org=org,
        n_cpus=2,
        n_accel_cores=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        seed=7,
    )


def _compiled_pairs(ctrl):
    """Every (state, event) pair the compiled table will dispatch."""
    return {
        (state, event)
        for state, row in ctrl._dispatch.items()
        for event in row
    }


CASES = [(host, org) for host in HostProtocol for org in AccelOrg]


@pytest.mark.parametrize(
    "host,org", CASES,
    ids=[f"{h.name.lower()}-{o.name.lower()}" for h, o in CASES],
)
def test_compiled_table_matches_declared_transitions(host, org):
    system = build_system(_small_config(host, org))
    checked = 0
    for ctrl in system.controllers():
        compiled = _compiled_pairs(ctrl)
        declared = set(ctrl.transitions)
        # Same key set in both directions.
        assert compiled == declared, (
            f"{ctrl.name}: compiled table diverged from declared transitions "
            f"(extra={compiled - declared}, missing={declared - compiled})"
        )
        for state, row in ctrl._dispatch.items():
            for event, (handler, key) in row.items():
                # The flattened entry must bind the exact declared handler
                # and carry the pre-made coverage key.
                assert ctrl.has_transition(state, event)
                assert handler is ctrl.transitions[(state, event)], (
                    f"{ctrl.name}: ({state}, {event}) bound to a different handler"
                )
                assert key == (state, event)
                checked += 1
        # The coverage denominator view is unchanged by compilation.
        assert ctrl.possible_transitions() == declared - ctrl.coverage_exempt
    # Table-driven hosts contribute hundreds of pairs; XG controllers are
    # intentionally method-driven (empty tables) and contribute zero.
    assert checked == sum(len(c.transitions) for c in system.controllers())


@pytest.mark.parametrize("host", list(HostProtocol), ids=lambda h: h.name.lower())
def test_compiled_fire_installed_per_instance(host):
    system = build_system(_small_config(host, AccelOrg.XG))
    for ctrl in system.controllers():
        # Default mode is compiled: each instance shadows the class method
        # with its own closure over the flattened table.
        assert "fire" in ctrl.__dict__
        assert ctrl.fire is not type(ctrl).fire


def test_recompile_tracks_runtime_table_edits():
    """Mutating ``transitions`` then recompiling keeps the views in sync."""
    system = build_system(_small_config(HostProtocol.MESI, AccelOrg.XG))
    ctrl = system.cpu_caches[0]
    key = next(iter(ctrl.transitions))
    handler = ctrl.transitions.pop(key)
    ctrl.recompile_dispatch()
    assert key not in _compiled_pairs(ctrl)
    ctrl.transitions[key] = handler
    ctrl.recompile_dispatch()
    assert key in _compiled_pairs(ctrl)
    assert ctrl._dispatch[key[0]][key[1]][0] is handler
