"""Unit tests for the simulator core."""

import pytest

from repro.sim.component import Component
from repro.sim.message import Message
from repro.sim.simulator import DeadlockError, Simulator


class _Sink(Component):
    PORTS = ("inbox",)

    def __init__(self, sim, name, consume=True):
        super().__init__(sim, name)
        self.consume = consume
        self.seen = []

    def wakeup(self):
        if not self.consume:
            return
        while True:
            msg = self.in_ports["inbox"].pop(self.sim.tick)
            if msg is None:
                return
            self.seen.append(msg)


def test_run_until_idle():
    sim = Simulator()
    ticks = []
    sim.schedule(5, ticks.append, 5)
    sim.schedule(10, ticks.append, 10)
    assert sim.run() == "idle"
    assert ticks == [5, 10]
    assert sim.tick == 10


def test_max_ticks_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, 1)
    sim.schedule(50, fired.append, 2)
    assert sim.run(max_ticks=20) == "max_ticks"
    assert fired == [1]
    assert sim.tick == 20
    # the remaining event still fires later
    assert sim.run() == "idle"
    assert fired == [1, 2]


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i + 1, lambda: None)
    assert sim.run(max_events=3) == "max_events"


def test_deterministic_rng_per_seed():
    a = [Simulator(seed=42).rng.random() for _ in range(1)]
    b = [Simulator(seed=42).rng.random() for _ in range(1)]
    c = [Simulator(seed=43).rng.random() for _ in range(1)]
    assert a == b != c


def test_idle_with_unconsumed_message_is_deadlock():
    sim = Simulator()
    sink = _Sink(sim, "sink", consume=False)
    sink.deliver("inbox", 1, Message("ping", 0x0, dest="sink"))
    with pytest.raises(DeadlockError):
        sim.run()


def test_watchdog_threshold_fires_while_running():
    sim = Simulator(deadlock_threshold=100)
    sink = _Sink(sim, "sink", consume=False)
    sink.deliver("inbox", 1, Message("ping", 0x0, dest="sink"))

    def heartbeat(tick=0):
        if tick < 1000:
            sim.schedule(10, heartbeat, tick + 10)

    heartbeat()
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert excinfo.value.component is sink


def test_watchdog_exemption():
    sim = Simulator(deadlock_threshold=100)
    sink = _Sink(sim, "sink", consume=False)
    sink.watchdog_exempt = True
    sink.deliver("inbox", 1, Message("ping", 0x0, dest="sink"))
    assert sim.run() == "idle"


def test_consumed_messages_do_not_deadlock():
    sim = Simulator()
    sink = _Sink(sim, "sink")
    for i in range(4):
        sink.deliver("inbox", i + 1, Message("ping", 64 * i, dest="sink"))
    assert sim.run() == "idle"
    assert len(sink.seen) == 4


def test_component_lookup_and_stats_aggregation():
    sim = Simulator()
    sink = _Sink(sim, "sink")
    assert sim.component("sink") is sink
    with pytest.raises(KeyError):
        sim.component("nope")
    sink.stats.inc("things", 3)
    assert sim.aggregate_stats().get("things") == 3


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)
