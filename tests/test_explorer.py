"""Tests for the concrete-state reachability explorer.

Tier-1 runs capped explorations (seconds); full cell enumerations are
marked ``explore_full`` and only run with ``--explore-full`` (CI's
explore-smoke job and local deep verification).
"""

import json

import pytest

from repro.coherence.coverage import CoverageReport
from repro.eval.campaign import shard_evenly
from repro.host.config import HostProtocol
from repro.host.system import build_system
from repro.obs.matrix import CellSummary, render_missing
from repro.obs import CoverageMatrix
from repro.verify.explorer import (
    ADDRESS_POOL,
    ExplorerHarness,
    authoritative_uncovered,
    cell_config,
    cross_check_coverage,
    explore_cell,
    load_reachable_report,
    replay_path,
    run_cell_stress,
    state_set_digest,
)
from repro.verify.model import reachable_projections

CELL = {"host": "mesi", "variant": "full_state", "addresses": 1}
ADDR = ADDRESS_POOL[0]


# -- snapshot / transition-relation hooks -------------------------------------


def test_controller_hooks_expose_relation_and_coverage():
    system = build_system(cell_config(**CELL))
    l2 = system.directory
    relation = l2.transition_relation()
    assert relation and all(
        isinstance(s, str) and isinstance(e, str) for s, e in relation)
    assert l2.covered_transitions() == []  # nothing ran yet
    snap = l2.snapshot_state()
    assert snap.get("cache", {}) == {}
    assert snap.get("tbes", {}) == {}


def test_sequencer_snapshot_tracks_outstanding():
    system = build_system(cell_config(**CELL))
    seq = system.cpu_seqs[0]
    assert seq.snapshot_state() == {"outstanding": ()}
    seq.load(ADDR)
    outstanding = seq.snapshot_state()["outstanding"]
    assert len(outstanding) == 1
    assert outstanding[0][0] == ADDR


def test_xg_snapshot_extra_has_mirror_and_quarantine():
    system = build_system(cell_config(**CELL))
    extra = system.xg.snapshot_extra()
    assert extra["quarantine"] == "healthy"
    assert extra["errors"] == 0
    assert extra["mirror"] == {}


def test_hammer_directory_snapshot_extra_owners():
    system = build_system(cell_config(host="hammer", variant="full_state"))
    assert system.directory.snapshot_extra() == {"owners": {}}


# -- harness basics -----------------------------------------------------------


def test_root_state_is_quiescent_and_clean():
    harness = ExplorerHarness(CELL)
    assert harness.is_quiescent()
    assert harness.state_problems() == []
    actions = harness.enabled_actions()
    # 3 sequencers (2 CPU + 1 accel) x {load, store} x 1 address
    assert len(actions) == 6
    assert all(action[0] == "issue" for action in actions)


def test_issue_parks_instead_of_delivering():
    harness = ExplorerHarness(CELL)
    harness.apply(("issue", 0, "load", ADDR))
    assert len(harness.parked) == 1
    parked = harness.parked[0]
    assert parked.msg.dest == "l2"
    assert not harness.is_quiescent()
    delivers = [a for a in harness.enabled_actions() if a[0] == "deliver"]
    assert len(delivers) == 1


def test_ordered_lane_exposes_only_oldest():
    harness = ExplorerHarness(CELL)
    # accel load parks GetS on the ordered accel net (accel_l1 -> xg)
    harness.apply(("issue", 2, "load", ADDR))
    lanes = {p.lane for p in harness.parked}
    assert len(harness.parked) == 1
    delivers = [a for a in harness.enabled_actions() if a[0] == "deliver"]
    assert len(delivers) == len(lanes) == 1


# -- canonical hashing and symmetry -------------------------------------------


def test_core_permutation_symmetry():
    """Issuing on cpu.0 and on cpu.1 must reach the same canonical state."""
    a = replay_path(CELL, [("issue", 0, "load", ADDR)])
    b = replay_path(CELL, [("issue", 1, "load", ADDR)])
    assert a.digest() == b.digest()
    assert a.canonical() == b.canonical()


def test_distinct_ops_hash_differently():
    load = replay_path(CELL, [("issue", 0, "load", ADDR)])
    store = replay_path(CELL, [("issue", 0, "store", ADDR)])
    assert load.digest() != store.digest()


def test_address_renaming_symmetry():
    cell2 = dict(CELL, addresses=2)
    a = replay_path(cell2, [("issue", 0, "load", ADDRESS_POOL[0])])
    b = replay_path(cell2, [("issue", 0, "load", ADDRESS_POOL[1])])
    assert a.digest() == b.digest()


def test_replay_is_deterministic():
    path = [("issue", 0, "store", ADDR), ("deliver", 0)]
    assert replay_path(CELL, path).digest() == replay_path(CELL, path).digest()


# -- capped BFS ---------------------------------------------------------------


def test_capped_bfs_finds_no_violations():
    result = explore_cell(**CELL, max_states=120)
    assert result["ok"]
    assert result["truncated"]
    assert result["states"] == 120
    assert result["transitions"] > 0
    assert len(result["digest"]) == 64
    assert result["reachable"]  # transitions were harvested
    assert result["counterexample"] is None


def test_serial_and_sharded_digests_identical():
    serial = explore_cell(**CELL, max_states=80)
    sharded = explore_cell(**CELL, max_states=80, workers=2)
    assert serial["digest"] == sharded["digest"]
    assert serial["states"] == sharded["states"]
    assert serial["transitions"] == sharded["transitions"]
    assert serial["reachable"] == sharded["reachable"]


# -- counterexamples (satellite: replay byte-for-byte) ------------------------


def test_counterexample_replays_byte_for_byte():
    result = explore_cell(**CELL, max_states=5000,
                          check="demo_accel_never_owns")
    counterexample = result["counterexample"]
    assert counterexample is not None
    assert not result["ok"]
    assert "demo_accel_never_owns" in counterexample["reason"]
    replayed = replay_path(counterexample["cell"],
                           [tuple(a) for a in counterexample["path"]])
    assert replayed.canonical() == counterexample["canonical"]
    assert replayed.digest() == counterexample["digest"]
    assert replayed.state_problems("demo_accel_never_owns")


def test_counterexample_path_is_json_round_trippable():
    result = explore_cell(**CELL, max_states=5000,
                          check="demo_accel_never_owns")
    wire = json.loads(json.dumps(result["counterexample"]))
    replayed = replay_path(wire["cell"], [tuple(a) for a in wire["path"]])
    assert replayed.digest() == wire["digest"]


# -- differential vs the abstract model (satellite) ---------------------------


def test_concrete_projections_subset_of_abstract_model():
    abstract = reachable_projections()
    result = explore_cell(**CELL, max_states=2500)
    concrete = {tuple(pair) for pair in result["projections"]}
    assert concrete, "explorer observed no XG-link projections"
    assert concrete <= abstract, (
        f"concrete XG-link states unreachable in the abstract model: "
        f"{sorted(concrete - abstract)}")


def test_transactional_cell_has_no_projection():
    result = explore_cell(host="mesi", variant="transactional",
                          addresses=1, max_states=60)
    assert result["projections"] == []
    assert result["ok"]


# -- coverage cross-check machinery -------------------------------------------


def test_cross_check_flags_unreachable_covered():
    result = {"reachable": {"l2": [("A", "X"), ("B", "Y")]}}
    ok = cross_check_coverage(result, {"l2": [("A", "X")]})
    assert ok == []
    bad = cross_check_coverage(result, {"l2": [("C", "Z")]})
    assert bad == [("l2", [("C", "Z")])]


def test_authoritative_uncovered_is_reachable_minus_covered():
    result = {"reachable": {"l2": [("A", "X"), ("B", "Y")]}}
    out = authoritative_uncovered(result, {"l2": [("A", "X")]})
    assert out == {"l2": [("B", "Y")]}
    assert authoritative_uncovered(result, {"l2": [("A", "X"), ("B", "Y")]}) == {}


def test_stress_runs_on_cell_config_produce_coverage():
    covered = run_cell_stress(CELL, seed=1, ops=40)
    assert covered
    assert any(pairs for pairs in covered.values())


def test_load_reachable_report_skips_truncated(tmp_path):
    path = tmp_path / "explore_report.json"
    payload = {"cells": [
        {"truncated": False, "reachable": {"l2": [["A", "X"]]}},
        {"truncated": True, "reachable": {"l2": [["B", "Y"]]}},
    ]}
    path.write_text(json.dumps(payload))
    assert load_reachable_report(path) == {"l2": {("A", "X")}}
    both = load_reachable_report(path, include_partial=True)
    assert both == {"l2": {("A", "X"), ("B", "Y")}}


# -- report integration -------------------------------------------------------


def _summary_with_holes():
    cell = CellSummary("mesi/xg-full-L1")
    report = CoverageReport("l2")
    report.possible = {("A", "X"), ("B", "Y"), ("C", "Z")}
    report.visited[("A", "X")] += 1
    cell.coverage["l2"] = report
    return cell


def test_missing_transitions_reachability_filter():
    cell = _summary_with_holes()
    assert cell.missing_transitions() == [
        ("l2", "B", "Y"), ("l2", "C", "Z")]
    reachable = {"l2": {("A", "X"), ("B", "Y")}}
    assert cell.missing_transitions(reachable) == [("l2", "B", "Y")]
    # unknown ctypes pass through unfiltered
    assert cell.missing_transitions({"other": set()}) == [
        ("l2", "B", "Y"), ("l2", "C", "Z")]


def test_render_missing_reports_unreachable_excluded():
    matrix = CoverageMatrix()
    matrix.cells["mesi/xg-full-L1"] = _summary_with_holes()
    text = render_missing(matrix, reachable={"l2": {("B", "Y")}})
    assert "1 uncovered reachable transition(s)" in text
    assert "1 proven unreachable excluded" in text


# -- shard helper -------------------------------------------------------------


def test_shard_evenly():
    assert shard_evenly([], 4) == []
    assert shard_evenly([1, 2, 3], 1) == [[1, 2, 3]]
    shards = shard_evenly(list(range(10)), 3)
    assert [len(s) for s in shards] == [4, 3, 3]
    assert [x for shard in shards for x in shard] == list(range(10))
    assert shard_evenly([1, 2], 5) == [[1], [2]]


# -- exhaustive proofs (explore-full only) ------------------------------------


@pytest.mark.explore_full
def test_full_mesi_full_state_cell_proved():
    """The acceptance cell: complete enumeration, zero violations."""
    result = explore_cell(**CELL, max_states=100_000)
    assert result["complete"]
    assert result["ok"]
    assert result["quiescent_states"] >= 2
    assert result["states"] > 10_000


@pytest.mark.explore_full
def test_full_cell_sharded_digest_matches_serial():
    serial = explore_cell(**CELL, max_states=100_000)
    sharded = explore_cell(**CELL, max_states=100_000, workers=4)
    assert serial["complete"] and sharded["complete"]
    assert serial["digest"] == sharded["digest"]


@pytest.mark.explore_full
def test_full_cell_stress_coverage_is_reachable_subset():
    result = explore_cell(**CELL, max_states=100_000)
    assert result["complete"]
    for seed in range(3):
        covered = run_cell_stress(CELL, seed=seed, ops=150)
        assert cross_check_coverage(result, covered) == []


@pytest.mark.explore_full
@pytest.mark.parametrize("host", ["hammer", "mesif"])
def test_other_hosts_capped_exploration_clean(host):
    result = explore_cell(host=host, variant="full_state",
                          addresses=1, max_states=5000)
    assert result["ok"]
