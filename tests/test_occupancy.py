"""Tests for controller occupancy (per-message processing time)."""

import pytest

from repro.coherence.controller import CONSUMED, CoherenceController
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.sim.message import Message
from repro.sim.simulator import Simulator
from repro.testing.invariants import check_all
from repro.testing.random_tester import RandomTester
from repro.workloads.synthetic import PERF_WORKLOADS, run_drivers


class _Counter(CoherenceController):
    CONTROLLER_TYPE = "counter"
    PORTS = ("inbox",)

    def __init__(self, sim, name):
        self.handled_at = []
        super().__init__(sim, name)

    def _build_transitions(self):
        return

    def handle_message(self, port, msg):
        self.handled_at.append(self.sim.tick)
        return CONSUMED


def test_zero_occupancy_processes_same_tick():
    sim = Simulator()
    ctrl = _Counter(sim, "c")
    for i in range(4):
        ctrl.deliver("inbox", 5, Message("m", 64 * i, dest="c"))
    sim.run()
    assert ctrl.handled_at == [5, 5, 5, 5]


def test_occupancy_serializes_processing():
    sim = Simulator()
    ctrl = _Counter(sim, "c")
    ctrl.occupancy = 10
    for i in range(4):
        ctrl.deliver("inbox", 5, Message("m", 64 * i, dest="c"))
    sim.run()
    assert ctrl.handled_at == [5, 15, 25, 35]
    assert ctrl.stats.get("busy_ticks") == 40


def test_busy_gate_blocks_early_wakeups():
    sim = Simulator()
    ctrl = _Counter(sim, "c")
    ctrl.occupancy = 20
    ctrl.deliver("inbox", 5, Message("m", 0x0, dest="c"))
    ctrl.deliver("inbox", 8, Message("m", 0x40, dest="c"))  # arrives mid-window
    sim.run()
    assert ctrl.handled_at == [5, 25]


def test_directory_occupancy_slows_contended_workload():
    ticks = {}
    for occ in (0, 16):
        config = SystemConfig(
            host=HostProtocol.MESI, org=AccelOrg.XG, n_cpus=2, n_accel_cores=2,
            seed=3, directory_occupancy=occ,
        )
        system = build_system(config)
        ticks[occ] = run_drivers(
            system.sim, PERF_WORKLOADS(scale=1)["shared_pingpong"](system)
        )
    assert ticks[16] > ticks[0] * 1.3


def test_stress_correct_under_occupancy():
    config = SystemConfig(
        host=HostProtocol.HAMMER, org=AccelOrg.XG, n_cpus=2, n_accel_cores=2,
        cpu_l1_sets=2, cpu_l1_assoc=1, shared_l2_sets=4, shared_l2_assoc=2,
        accel_l1_sets=2, accel_l1_assoc=1, randomize_latencies=True, seed=11,
        deadlock_threshold=600_000, accel_timeout=250_000, mem_latency=30,
        directory_occupancy=5,
    )
    system = build_system(config)
    tester = RandomTester(
        system.sim, system.sequencers, [0x1000 + 64 * i for i in range(5)],
        ops_target=2000, store_fraction=0.45,
    )
    tester.run()
    assert tester.loads_checked > 800
    assert len(system.error_log) == 0
    check_all(system)
