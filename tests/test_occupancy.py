"""Tests for controller occupancy (per-message processing time)."""

import pytest

from repro.coherence.controller import CONSUMED, CoherenceController
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.sim.message import Message
from repro.sim.simulator import Simulator
from repro.testing.invariants import check_all
from repro.testing.random_tester import RandomTester
from repro.workloads.synthetic import PERF_WORKLOADS, run_drivers


class _Counter(CoherenceController):
    CONTROLLER_TYPE = "counter"
    PORTS = ("inbox",)

    def __init__(self, sim, name):
        self.handled_at = []
        super().__init__(sim, name)

    def _build_transitions(self):
        return

    def handle_message(self, port, msg):
        self.handled_at.append(self.sim.tick)
        return CONSUMED


def test_zero_occupancy_processes_same_tick():
    sim = Simulator()
    ctrl = _Counter(sim, "c")
    for i in range(4):
        ctrl.deliver("inbox", 5, Message("m", 64 * i, dest="c"))
    sim.run()
    assert ctrl.handled_at == [5, 5, 5, 5]


def test_occupancy_serializes_processing():
    sim = Simulator()
    ctrl = _Counter(sim, "c")
    ctrl.occupancy = 10
    for i in range(4):
        ctrl.deliver("inbox", 5, Message("m", 64 * i, dest="c"))
    sim.run()
    assert ctrl.handled_at == [5, 15, 25, 35]
    assert ctrl.stats.get("busy_ticks") == 40


def test_busy_gate_blocks_early_wakeups():
    sim = Simulator()
    ctrl = _Counter(sim, "c")
    ctrl.occupancy = 20
    ctrl.deliver("inbox", 5, Message("m", 0x0, dest="c"))
    ctrl.deliver("inbox", 8, Message("m", 0x40, dest="c"))  # arrives mid-window
    sim.run()
    assert ctrl.handled_at == [5, 25]


def test_directory_occupancy_slows_contended_workload():
    ticks = {}
    for occ in (0, 16):
        config = SystemConfig(
            host=HostProtocol.MESI, org=AccelOrg.XG, n_cpus=2, n_accel_cores=2,
            seed=3, directory_occupancy=occ,
        )
        system = build_system(config)
        ticks[occ] = run_drivers(
            system.sim, PERF_WORKLOADS(scale=1)["shared_pingpong"](system)
        )
    assert ticks[16] > ticks[0] * 1.3


def test_note_busy_feeds_telemetry():
    from repro.obs import Telemetry

    sim = Simulator()
    obs = Telemetry(sim)
    ctrl = _Counter(sim, "c")
    ctrl.occupancy = 10
    for i in range(3):
        ctrl.deliver("inbox", 5, Message("m", 64 * i, dest="c"))
    sim.run()
    obs.finalize()
    assert ctrl.stats.get("busy_ticks") == 30
    # One busy record per handled message, each carrying the window length.
    assert [(c, t) for _tick, c, t in obs.busy] == [("c", 10)] * 3
    assert sum(t for _tick, comp, t in obs.busy if comp == "c") == 30


def _occupancy_tracks(payload):
    """Perfetto occupancy counter samples, keyed by component."""
    tracks = {}
    for event in payload["traceEvents"]:
        if event.get("cat") != "occupancy":
            continue
        component = event["name"].split("occupancy.", 1)[1]
        tracks.setdefault(component, []).append(event["args"])
    return tracks


def test_exported_occupancy_tracks_match_busy_counters():
    """The Perfetto occupancy tracks must sum to exactly the simulator-side
    ``busy_ticks`` stat of each component — real accounting, not a guess."""
    from repro.obs import Telemetry, build_trace

    config = SystemConfig(
        host=HostProtocol.MESI, org=AccelOrg.XG, n_cpus=2, n_accel_cores=2,
        cpu_l1_sets=2, cpu_l1_assoc=1, shared_l2_sets=4, shared_l2_assoc=2,
        accel_l1_sets=2, accel_l1_assoc=1, seed=5,
        deadlock_threshold=400_000, accel_timeout=150_000,
        directory_occupancy=8,
    )
    system = build_system(config)
    obs = Telemetry(system.sim)
    tester = RandomTester(
        system.sim, system.sequencers, [0x1000 + 64 * i for i in range(4)],
        ops_target=300, store_fraction=0.45,
    )
    tester.run()
    obs.finalize()
    payload = build_trace(obs, label=config.label)
    tracks = _occupancy_tracks(payload)

    busy_components = {comp for _tick, comp, _t in obs.busy}
    assert system.directory.name in busy_components  # occupancy=8 did work
    for component in busy_components:
        samples = tracks[component]
        # Real tracks carry busy_ticks, never the derived transition count.
        assert all("busy_ticks" in args and "transitions" not in args
                   for args in samples)
        exported = sum(args["busy_ticks"] for args in samples)
        ctrl = next(c for c in system.controllers() if c.name == component)
        assert exported == ctrl.stats.get("busy_ticks") > 0

    # Zero-occupancy components still get the derived fallback track, and
    # the two units never mix on one track name.
    derived = {
        comp for comp, samples in tracks.items()
        if any("transitions" in args for args in samples)
    }
    assert derived, "derived fallback tracks disappeared"
    assert not (derived & busy_components)


def test_stress_correct_under_occupancy():
    config = SystemConfig(
        host=HostProtocol.HAMMER, org=AccelOrg.XG, n_cpus=2, n_accel_cores=2,
        cpu_l1_sets=2, cpu_l1_assoc=1, shared_l2_sets=4, shared_l2_assoc=2,
        accel_l1_sets=2, accel_l1_assoc=1, randomize_latencies=True, seed=11,
        deadlock_threshold=600_000, accel_timeout=250_000, mem_latency=30,
        directory_occupancy=5,
    )
    system = build_system(config)
    tester = RandomTester(
        system.sim, system.sequencers, [0x1000 + 64 * i for i in range(5)],
        ops_target=2000, store_fraction=0.45,
    )
    tester.run()
    assert tester.loads_checked > 800
    assert len(system.error_log) == 0
    check_all(system)
