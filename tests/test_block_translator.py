"""Unit + property tests for block-size translation."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.datablock import DataBlock
from repro.xg.block_translator import BlockTranslator


def test_identity_translator():
    translator = BlockTranslator(64, 64)
    assert translator.is_identity
    assert translator.host_blocks_for(0x1040) == [0x1040]


def test_component_addresses():
    translator = BlockTranslator(64, 256)
    assert translator.ratio == 4
    assert translator.host_blocks_for(0x10C0) == [0x1000, 0x1040, 0x1080, 0x10C0]


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        BlockTranslator(64, 96)  # not a multiple
    with pytest.raises(ValueError):
        BlockTranslator(64, 32)  # smaller than host


def test_merge_places_components_correctly():
    translator = BlockTranslator(64, 128)
    low = DataBlock(64)
    low.write_byte(0, 0xAA)
    high = DataBlock(64)
    high.write_byte(0, 0xBB)
    merged = translator.merge(0x1000, {0x1000: low, 0x1040: high})
    assert merged.read_byte(0) == 0xAA
    assert merged.read_byte(64) == 0xBB


def test_merge_rejects_foreign_component():
    translator = BlockTranslator(64, 128)
    with pytest.raises(ValueError):
        translator.merge(0x1000, {0x2000: DataBlock(64)})


def test_split_sizes_and_addresses():
    translator = BlockTranslator(64, 256)
    wide = DataBlock(256)
    pieces = translator.split(0x1000, wide)
    assert sorted(pieces) == [0x1000, 0x1040, 0x1080, 0x10C0]
    assert all(piece.size == 64 for piece in pieces.values())
    with pytest.raises(ValueError):
        translator.split(0x1000, DataBlock(128))


@given(st.binary(min_size=256, max_size=256))
def test_split_merge_roundtrip(raw):
    translator = BlockTranslator(64, 256)
    wide = DataBlock.from_bytes(raw)
    pieces = translator.split(0x4000, wide)
    rebuilt = translator.merge(0x4000, pieces)
    assert rebuilt == wide


@given(
    st.sampled_from([128, 256, 512]),
    st.integers(min_value=0, max_value=2**20),
)
def test_alignment_invariants(accel_size, addr):
    translator = BlockTranslator(64, accel_size)
    base = translator.accel_align(addr)
    components = translator.host_blocks_for(addr)
    assert len(components) == accel_size // 64
    assert components[0] == base
    assert all(c % 64 == 0 for c in components)
    assert components[-1] + 64 == base + accel_size
