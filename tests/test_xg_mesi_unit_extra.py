"""Additional directed unit tests for MesiCrossingGuard: Recall, upgrade
flows, GetS_Only issuance, and PutS forwarding."""

import pytest

from repro.memory.datablock import DataBlock
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.mesi_xg import MesiCrossingGuard
from repro.xg.permissions import PagePermission, PermissionTable

from tests.helpers import RawAgent

ADDR = 0x4000


def _build(variant=XGVariant.FULL_STATE, default_perm=PagePermission.READ_WRITE):
    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = MesiCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        variant=variant,
        permissions=PermissionTable(default=default_perm),
        accel_timeout=100_000,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    RawAgent(sim, "l1.peer", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, l2, accel


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _go(sim, ticks=100):
    sim.run(max_ticks=sim.tick + ticks, final_check=False)


def _grant_m(sim, l2, accel, value=7):
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesiMsg.DataM, ADDR, "xg", "response", data=_block(value), ack_count=0)
    _go(sim)
    assert accel.of_type(AccelMsg.DataM)


def test_recall_reclaims_owned_block():
    """Inclusive L2 eviction: Recall -> accel Invalidate -> CopyBackInv."""
    sim, xg, l2, accel = _build()
    _grant_m(sim, l2, accel, value=9)
    l2.send(MesiMsg.Recall, ADDR, "xg", "forward")
    _go(sim)
    assert accel.of_type(AccelMsg.Invalidate)
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response", data=_block(9), dirty=True)
    _go(sim)
    back = l2.of_type(MesiMsg.CopyBackInv)
    assert back and back[0].dirty and back[0].data.read_byte(0) == 9
    assert xg.mirror_entry(ADDR) is None
    assert xg.tbes.lookup(ADDR) is None


def test_upgrade_counts_acks_like_an_l1():
    sim, xg, l2, accel = _build()
    # accel holds S first
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesiMsg.DataS, ADDR, "xg", "response", data=_block(1))
    _go(sim)
    # upgrade: DataM announces 2 sharer acks
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    assert l2.of_type(MesiMsg.GetM)
    l2.send(MesiMsg.DataM, ADDR, "xg", "response", data=_block(1), ack_count=2)
    _go(sim)
    assert not accel.of_type(AccelMsg.DataM), "acks still outstanding"
    peer = sim.component("l1.peer")
    peer.send(MesiMsg.InvAck, ADDR, "xg", "response")
    peer.send(MesiMsg.InvAck, ADDR, "xg", "response")
    _go(sim)
    assert accel.of_type(AccelMsg.DataM)
    assert l2.of_type(MesiMsg.UnblockX)
    assert xg.mirror_entry(ADDR).accel_state == "O"


def test_transactional_issues_gets_only_on_readonly():
    sim, xg, l2, accel = _build(
        variant=XGVariant.TRANSACTIONAL, default_perm=PagePermission.READ
    )
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    assert l2.of_type(MesiMsg.GetS_Only)
    assert not l2.of_type(MesiMsg.GetS)
    l2.send(MesiMsg.DataS, ADDR, "xg", "response", data=_block(2))
    _go(sim)
    assert accel.of_type(AccelMsg.DataS)


def test_full_state_uses_plain_gets_on_readonly():
    sim, xg, l2, accel = _build(default_perm=PagePermission.READ)
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    assert l2.of_type(MesiMsg.GetS), "Full State retains instead"


def test_puts_forwarded_to_mesi_host():
    """MESI needs exact sharer tracking, so accel PutS DOES reach it."""
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesiMsg.DataS, ADDR, "xg", "response", data=_block())
    _go(sim)
    accel.send(AccelMsg.PutS, ADDR, "xg", "accel_request")
    _go(sim)
    assert accel.of_type(AccelMsg.WBAck)
    assert l2.of_type(MesiMsg.PutS)
    l2.send(MesiMsg.WBAck, ADDR, "xg", "forward")
    _go(sim)
    assert xg.tbes.lookup(ADDR) is None
    assert xg.mirror_entry(ADDR) is None


def test_pute_preserves_clean_data():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesiMsg.DataM, ADDR, "xg", "response", data=_block(3), ack_count=0)
    _go(sim)
    accel.send(AccelMsg.PutE, ADDR, "xg", "accel_request", data=_block(3))
    _go(sim)
    puts = l2.of_type(MesiMsg.PutE)
    assert puts and not puts[0].dirty and puts[0].data.read_byte(0) == 3


def test_stalled_get_processed_after_probe_closes():
    sim, xg, l2, accel = _build()
    _grant_m(sim, l2, accel)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    _go(sim)
    # a new accel Get arrives while the probe is open: stalls, no error
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    assert len(l2.of_type(MesiMsg.GetS)) == 0
    assert len(xg.error_log) == 0
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response", data=_block(), dirty=True)
    _go(sim)
    assert len(l2.of_type(MesiMsg.GetS)) == 1, "woken and forwarded"


def test_second_probe_after_race_answered_locally():
    sim, xg, l2, accel = _build()
    _grant_m(sim, l2, accel)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    _go(sim)
    # racing Put resolves the probe...
    accel.send(AccelMsg.PutM, ADDR, "xg", "accel_request", data=_block(7), dirty=True)
    _go(sim)
    # ...and before the trailing InvAck arrives, the host probes again
    l2.send(MesiMsg.Inv, ADDR, "xg", "forward", requestor="l1.peer")
    _go(sim)
    peer = sim.component("l1.peer")
    assert peer.of_type(MesiMsg.InvAck)
    accel.send(AccelMsg.InvAck, ADDR, "xg", "accel_response")
    _go(sim)
    assert xg.tbes.lookup(ADDR) is None
    assert len(xg.error_log) == 0
