"""Tests for multiple accelerators, each behind its own Crossing Guard.

The paper: "There is one instance of Crossing Guard per accelerator in
the system." Two independent accelerators must stay coherent with the
CPUs AND each other — their only interaction path is through the host
protocol via their respective XGs.
"""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.testing.invariants import check_all
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant


def _config(host=HostProtocol.MESI, levels=1, **kw):
    return SystemConfig(
        host=host,
        org=AccelOrg.XG,
        xg_variant=XGVariant.FULL_STATE,
        n_accelerators=2,
        n_cpus=1,
        n_accel_cores=1,
        accel_levels=levels,
        **kw,
    )


def test_two_xgs_built():
    system = build_system(_config())
    assert len(system.xgs) == 2
    assert len(system.error_logs) == 2
    assert system.xgs[0].name == "xg" and system.xgs[1].name == "xg.1"
    assert system.xg is system.xgs[0]
    assert len(system.accel_seqs) == 2


def test_hammer_counts_both_xgs_as_peers():
    system = build_system(_config(host=HostProtocol.HAMMER))
    assert sorted(system.directory.cache_names) == ["cpu_l1.0", "xg", "xg.1"]
    assert all(xg.n_peers == 2 for xg in system.xgs)


@pytest.mark.parametrize(
    "host", [HostProtocol.MESI, HostProtocol.HAMMER], ids=["mesi", "hammer"]
)
def test_accel_to_accel_coherence_through_host(host):
    system = build_system(_config(host=host))
    a, b = system.accel_seqs
    out = {}
    a.store(0x6000, 111)
    system.sim.run()
    b.load(0x6000, lambda m, d: out.update(value=d.read_byte(0)))
    system.sim.run()
    assert out["value"] == 111
    # and the write-back direction
    b.store(0x6000, 99)
    system.sim.run()
    a.load(0x6000, lambda m, d: out.update(back=d.read_byte(0)))
    system.sim.run()
    assert out["back"] == 99
    assert all(len(log) == 0 for log in system.error_logs)
    check_all(system)


@pytest.mark.parametrize("seed", range(2))
@pytest.mark.parametrize(
    "host", [HostProtocol.MESI, HostProtocol.HAMMER], ids=["mesi", "hammer"]
)
def test_two_accelerator_stress(host, seed):
    config = _config(
        host=host,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30,
    )
    system = build_system(config)
    blocks = [0x1000 + 64 * i for i in range(5)]
    tester = RandomTester(
        system.sim, system.sequencers, blocks, ops_target=2500, store_fraction=0.45
    )
    tester.run()
    assert tester.loads_checked > 1000
    assert all(len(log) == 0 for log in system.error_logs)
    check_all(system)


def test_two_accelerator_two_level_stress():
    config = _config(
        levels=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        accel_l2_sets=2,
        accel_l2_assoc=2,
        randomize_latencies=True,
        seed=5,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30,
    )
    system = build_system(config)
    assert len(system.accel_l2s) == 2
    blocks = [0x1000 + 64 * i for i in range(5)]
    tester = RandomTester(
        system.sim, system.sequencers, blocks, ops_target=2000, store_fraction=0.45
    )
    tester.run()
    assert all(len(log) == 0 for log in system.error_logs)
    check_all(system)
