"""Byzantine rogue accelerators: plans, containment campaigns, guards.

Covers the :class:`~repro.accel.rogue.RoguePlan` serialization contract,
per-plan containment outcomes, the campaign matrix plumbing, XG's
malformed-message rejection, accelerator-side Nack tolerance, and the
golden-run guard that keeps rogues out of pinned reference runs.
"""

import pytest

from repro.accel.l1_single import AccelL1
from repro.accel.rogue import ROGUE_MOVES, RogueAccel, RoguePlan
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.testing.golden import _assert_no_rogue, digest_system
from repro.testing.rogue import (
    CONTAINMENT_OUTCOMES,
    ROGUE_PLANS,
    run_rogue_campaign,
    run_rogue_matrix,
)
from repro.xg.errors import Guarantee
from repro.xg.interface import AccelMsg, XGVariant

from tests.helpers import RawAgent


# -- plan contract -----------------------------------------------------------------


def test_plan_json_round_trip():
    plan = ROGUE_PLANS["shapeshifter"]
    clone = RoguePlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.moves == plan.moves
    assert clone.inv_responses == plan.inv_responses


def test_plan_reseed_changes_only_seed():
    plan = ROGUE_PLANS["garbler"].reseed(17)
    assert plan.seed == 17
    assert plan.moves == ROGUE_PLANS["garbler"].moves
    assert ROGUE_PLANS["garbler"].seed == 0, "library entries stay immutable"


def test_plan_rejects_unknown_behaviors():
    with pytest.raises(ValueError):
        RoguePlan("bad", moves={"quantum_tunnel": 1})
    with pytest.raises(ValueError):
        RoguePlan("bad", inv_responses={"sulk": 1})


def test_stock_plans_cover_every_move():
    exercised = set()
    for plan in ROGUE_PLANS.values():
        exercised.update(plan.moves)
    assert exercised == set(ROGUE_MOVES)


# -- campaign determinism ----------------------------------------------------------


def _short_campaign(plan, **kw):
    kw.setdefault("duration", 15_000)
    kw.setdefault("cpu_ops", 200)
    return run_rogue_campaign(
        HostProtocol.MESI, XGVariant.FULL_STATE, plan=plan, seed=3, **kw
    )


def test_campaign_is_deterministic():
    first, _ = _short_campaign("shapeshifter")
    second, _ = _short_campaign("shapeshifter")
    assert first.as_dict() == second.as_dict()


def test_campaign_replays_from_serialized_plan():
    result, _ = _short_campaign("replayer")
    replayed = RoguePlan.from_json(result.plan_json)
    again, _ = _short_campaign(replayed)
    assert again.as_dict() == result.as_dict()


# -- containment -------------------------------------------------------------------


def test_garbler_is_contained_and_malformed_accounted():
    result, system = _short_campaign("garbler")
    assert result.contained
    assert result.containment in CONTAINMENT_OUTCOMES
    assert result.containment != "escaped"
    assert result.malformed_rejected > 0
    assert result.violations.get("G3_MALFORMED", 0) > 0
    assert result.cpu_loads_checked > 0, "host cores must keep completing"
    assert system.watchdog.checks > 0


def test_flooder_trips_the_ladder():
    result, _system = _short_campaign("flooder")
    assert result.contained
    assert result.containment in ("quarantined", "throttled")
    assert result.quarantine_state in ("throttled", "disabled")


def test_zombie_death_is_absorbed():
    result, system = _short_campaign("zombie", duration=25_000)
    assert result.contained
    assert result.rogue_died
    assert result.cpu_loads_checked > 0
    rogue = system.accel_caches[0]
    assert rogue.died_at is not None


def test_watchdog_runs_during_campaigns():
    result, _system = _short_campaign("spoofer")
    assert result.watchdog_samples > 0
    assert result.watchdog_samples == result.watchdog_checks + result.watchdog_skipped
    assert not result.invariant_violated


def test_matrix_rows_are_rectangular_and_contained():
    rows = run_rogue_matrix(
        plans=("mute",),
        hosts=(HostProtocol.MESI,),
        variants=(XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL),
        seeds=range(1),
        duration=15_000,
        cpu_ops=200,
    )
    assert len(rows) == 2
    for row in rows:
        assert row["contained"]
        assert row["containment"] in CONTAINMENT_OUTCOMES
        assert row["plan"] == "mute"
        assert row["host"] == "MESI"
    assert {row["variant"] for row in rows} == {"FULL_STATE", "TRANSACTIONAL"}


def test_matrix_rejects_unknown_plan():
    with pytest.raises(ValueError):
        run_rogue_matrix(plans=("heisenbug",))


# -- XG malformed-message rejection (G3) -------------------------------------------


def _xg_with_agent():
    from repro.xg.errors import XGErrorLog
    from repro.xg.mesi_xg import MesiCrossingGuard
    from repro.xg.permissions import PagePermission, PermissionTable

    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = MesiCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        permissions=PermissionTable(default=PagePermission.READ_WRITE),
        error_log=XGErrorLog(),
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, l2, accel


def test_non_integer_address_rejected_before_alignment():
    sim, xg, l2, accel = _xg_with_agent()
    accel.send(AccelMsg.GetM, "0xBAD", "xg", "accel_request")
    accel.send(AccelMsg.InvAck, None, "xg", "accel_response")
    sim.run()
    assert xg.stats.get("malformed_rejected") == 2
    assert xg.error_log.count(Guarantee.G3_MALFORMED) == 2
    assert not l2.received, "nothing malformed may reach the host"


def test_unknown_message_type_rejected():
    sim, xg, l2, accel = _xg_with_agent()
    accel.send("Bogus", 0x4000, "xg", "accel_request")
    accel.send("Bogus", 0x4000, "xg", "accel_response")
    sim.run()
    assert xg.stats.get("malformed_rejected") == 2
    assert xg.error_log.count(Guarantee.G3_MALFORMED) == 2
    assert not l2.received


def test_putm_without_payload_is_reported_not_crash():
    sim, xg, l2, accel = _xg_with_agent()
    accel.send(AccelMsg.GetM, 0x4000, "xg", "accel_request")
    sim.run()
    from repro.protocols.mesi.messages import MesiMsg

    from repro.memory.datablock import DataBlock

    grant = DataBlock()
    grant.write_byte(0, 3)
    l2.send(MesiMsg.DataM, 0x4000, "xg", "response", data=grant)
    sim.run()
    assert accel.of_type(AccelMsg.DataM)
    accel.send(AccelMsg.PutM, 0x4000, "xg", "accel_request", data=None, dirty=True)
    sim.run()
    assert xg.error_log.count(Guarantee.G1A_STABLE_REQUEST) == 1
    assert xg.tbes.lookup(0x4000) is None


# -- accelerator-side Nack tolerance -----------------------------------------------


def test_real_accel_l1_ignores_nack():
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    l1 = AccelL1(sim, "accel_l1", net, "xg", num_sets=2, assoc=1)
    net.attach(l1)
    fake_xg = RawAgent(sim, "xg", net)
    fake_xg.send(AccelMsg.Nack, 0x4000, "accel_l1", "fromxg")
    sim.run()
    assert l1.stats.get("unexpected_from_xg") == 1
    assert l1.tbes.lookup(0x4000) is None


# -- deadlock forensics ------------------------------------------------------------


def test_deadlock_diagnosis_names_quarantine_and_rogue_actions():
    """A hung adversarial run must explain itself: the diagnosis carries
    the XG quarantine rung and the rogue's recent move log."""
    from repro.sim.simulator import DeadlockError

    result, system = _short_campaign("shapeshifter")
    sim = system.sim
    report = DeadlockError(system.xg, 0, sim.tick, sim=sim).diagnose()
    assert "-- component forensics --" in report
    assert "quarantine=" in report
    assert "rogue plan='shapeshifter'" in report
    rogue = system.accel_caches[0]
    assert rogue.recent_actions, "campaign must have produced rogue moves"
    tick, behavior, _mtype, _addr = rogue.recent_actions[-1]
    assert f"t={tick} {behavior}" in report


# -- golden-run guard --------------------------------------------------------------


def test_golden_guard_rejects_rogue_systems():
    config = SystemConfig(
        host=HostProtocol.MESI,
        org=AccelOrg.XG,
        tags={"adversary": ("rogue", {"addr_pool": [0x1000], "plan": None})},
    )
    system = build_system(config)
    with pytest.raises(AssertionError, match="rogue"):
        _assert_no_rogue(system)


def test_golden_guard_accepts_stock_adversaries():
    config = SystemConfig(
        host=HostProtocol.MESI,
        org=AccelOrg.XG,
        tags={"adversary": ("flood", {"addr_pool": [0x1000]})},
    )
    _assert_no_rogue(build_system(config))


def test_watchdog_is_digest_neutral():
    """The same seeded run digests identically with the watchdog on/off."""
    from repro.obs import Telemetry
    from repro.testing.random_tester import RandomTester

    def run(interval):
        config = SystemConfig(
            host=HostProtocol.MESI,
            org=AccelOrg.XG,
            n_cpus=2,
            cpu_l1_sets=2,
            cpu_l1_assoc=1,
            shared_l2_sets=4,
            shared_l2_assoc=2,
            randomize_latencies=True,
            seed=11,
            invariant_interval=interval,
        )
        system = build_system(config)
        obs = Telemetry(system.sim)
        tester = RandomTester(
            system.sim, system.sequencers, [0x1000 + 64 * i for i in range(4)],
            ops_target=200, store_fraction=0.45,
        )
        tester.run()
        obs.finalize()
        return digest_system(system, obs)

    without = run(0)
    with_watchdog = run(400)
    assert with_watchdog == without
