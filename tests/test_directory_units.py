"""Directed unit tests for the two directory controllers, driven by
RawAgents playing the caches."""

import pytest

from repro.memory.datablock import DataBlock
from repro.memory.main_memory import MainMemory
from repro.protocols.hammer.directory import DirState, HammerDirectory
from repro.protocols.hammer.messages import HammerMsg
from repro.protocols.mesi.l2 import L2State, MesiL2
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator

from tests.helpers import RawAgent

ADDR = 0x6000


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


# -- Hammer directory -----------------------------------------------------------


def _hammer():
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), name="host")
    memory = MainMemory(latency=5)
    directory = HammerDirectory(
        sim, "dir", net, memory, cache_names=["a", "b"]
    )
    net.attach(directory)
    a = RawAgent(sim, "a", net)
    b = RawAgent(sim, "b", net)
    return sim, directory, memory, a, b


def _go(sim, ticks=100):
    sim.run(max_ticks=sim.tick + ticks, final_check=False)


def test_hammer_get_broadcasts_to_others_and_fetches_memory():
    sim, directory, memory, a, b = _hammer()
    a.send(HammerMsg.GetS, ADDR, "dir", "request")
    _go(sim)
    assert b.of_type(HammerMsg.Fwd_GetS), "peer probed"
    assert not a.of_type(HammerMsg.Fwd_GetS), "requestor never probed"
    assert a.of_type(HammerMsg.MemData), "memory always answers"


def test_hammer_blocks_per_address_until_unblock():
    sim, directory, memory, a, b = _hammer()
    a.send(HammerMsg.GetS, ADDR, "dir", "request")
    _go(sim)
    b.send(HammerMsg.GetM, ADDR, "dir", "request")
    _go(sim)
    assert not a.of_type(HammerMsg.Fwd_GetM), "second txn must wait"
    a.send(HammerMsg.UnblockE, ADDR, "dir", "response")
    _go(sim)
    assert a.of_type(HammerMsg.Fwd_GetM), "released after the Unblock"
    assert directory.owner_of(ADDR) == "a"


def test_hammer_owner_put_two_phase():
    sim, directory, memory, a, b = _hammer()
    a.send(HammerMsg.GetM, ADDR, "dir", "request")
    _go(sim)
    a.send(HammerMsg.UnblockM, ADDR, "dir", "response")
    _go(sim)
    a.send(HammerMsg.PutM, ADDR, "dir", "request")
    _go(sim)
    assert a.of_type(HammerMsg.WBAck)
    a.send(HammerMsg.WBData, ADDR, "dir", "response", data=_block(7), dirty=True)
    _go(sim)
    assert memory.peek(ADDR).read_byte(0) == 7
    assert directory.owner_of(ADDR) is None


def test_hammer_nonowner_put_nacked():
    sim, directory, memory, a, b = _hammer()
    b.send(HammerMsg.PutM, ADDR, "dir", "request")
    _go(sim)
    assert b.of_type(HammerMsg.WBNack)
    assert not b.of_type(HammerMsg.WBAck)


def test_hammer_puts_sunk_silently():
    sim, directory, memory, a, b = _hammer()
    a.send(HammerMsg.PutS, ADDR, "dir", "request")
    _go(sim)
    assert not a.received, "no response to a sunk PutS"
    assert directory.stats.get("puts_sunk") == 1


def test_hammer_unblock_s_keeps_owner():
    sim, directory, memory, a, b = _hammer()
    a.send(HammerMsg.GetM, ADDR, "dir", "request")
    _go(sim)
    a.send(HammerMsg.UnblockM, ADDR, "dir", "response")
    _go(sim)
    b.send(HammerMsg.GetS, ADDR, "dir", "request")
    _go(sim)
    b.send(HammerMsg.UnblockS, ADDR, "dir", "response")
    _go(sim)
    assert directory.owner_of(ADDR) == "a", "GetS leaves the M/O owner in place"


# -- MESI L2 -------------------------------------------------------------------------


def _mesi_l2():
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), name="host")
    memory = MainMemory(latency=5)
    l2 = MesiL2(sim, "l2", net, memory, num_sets=2, assoc=2)
    net.attach(l2)
    a = RawAgent(sim, "a", net)
    b = RawAgent(sim, "b", net)
    return sim, l2, memory, a, b


def test_mesi_l2_miss_grants_exclusive():
    sim, l2, memory, a, b = _mesi_l2()
    a.send(MesiMsg.GetS, ADDR, "l2", "request")
    _go(sim)
    assert a.of_type(MesiMsg.DataE)
    a.send(MesiMsg.UnblockX, ADDR, "l2", "response")
    _go(sim)
    entry = l2.cache.lookup(ADDR, touch=False)
    assert entry.state is L2State.X and entry.meta["owner"] == "a"


def test_mesi_l2_getm_sends_acks_count_and_invs():
    sim, l2, memory, a, b = _mesi_l2()
    for agent in (a, b):
        agent.send(MesiMsg.GetS, ADDR, "l2", "request")
        _go(sim)
        agent.send(MesiMsg.UnblockS, ADDR, "l2", "response")
        _go(sim)
    a.send(MesiMsg.GetM, ADDR, "l2", "request")
    _go(sim)
    grant = a.of_type(MesiMsg.DataM)[0]
    assert grant.ack_count == 1, "one other sharer to invalidate"
    assert b.of_type(MesiMsg.Inv)


def test_mesi_l2_dirty_grant_on_unshared_gets():
    sim, l2, memory, a, b = _mesi_l2()
    # make the L2 copy dirty via an owner writeback
    a.send(MesiMsg.GetM, ADDR, "l2", "request")
    _go(sim)
    a.send(MesiMsg.UnblockX, ADDR, "l2", "response")
    _go(sim)
    a.send(MesiMsg.PutM, ADDR, "l2", "request", data=_block(3), dirty=True)
    _go(sim)
    assert a.of_type(MesiMsg.WBAck)
    b.send(MesiMsg.GetS, ADDR, "l2", "request")
    _go(sim)
    grant = b.of_type(MesiMsg.DataM)
    assert grant and grant[0].data.read_byte(0) == 3, "dirty-migration grant"


def test_mesi_l2_stale_put_nacked_and_sharer_removed():
    sim, l2, memory, a, b = _mesi_l2()
    a.send(MesiMsg.GetS, ADDR, "l2", "request")
    _go(sim)
    a.send(MesiMsg.UnblockS, ADDR, "l2", "response")
    _go(sim)
    a.send(MesiMsg.PutM, ADDR, "l2", "request", data=_block(), dirty=True)  # wrong type
    _go(sim)
    assert a.of_type(MesiMsg.WBNack)
    entry = l2.cache.lookup(ADDR, touch=False)
    assert "a" not in entry.meta["sharers"]


def test_mesi_l2_requests_stall_while_busy():
    sim, l2, memory, a, b = _mesi_l2()
    a.send(MesiMsg.GetS, ADDR, "l2", "request")
    _go(sim)
    b.send(MesiMsg.GetS, ADDR, "l2", "request")
    _go(sim)
    assert not b.of_type(MesiMsg.DataE) and not b.of_type(MesiMsg.DataS)
    a.send(MesiMsg.UnblockX, ADDR, "l2", "response")
    _go(sim)
    # now b is served via a forward to the new owner a
    assert a.of_type(MesiMsg.Fwd_GetS)
