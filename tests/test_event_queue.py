"""Unit tests for the event queue."""

import pytest

from repro.sim.event import Event, EventQueue


def test_events_fire_in_tick_order():
    queue = EventQueue()
    fired = []
    queue.schedule(30, fired.append, "c")
    queue.schedule(10, fired.append, "a")
    queue.schedule(20, fired.append, "b")
    while True:
        event = queue.pop()
        if event is None:
            break
        event.fire()
    assert fired == ["a", "b", "c"]


def test_same_tick_events_fire_in_insertion_order():
    queue = EventQueue()
    fired = []
    for label in "abcdef":
        queue.schedule(5, fired.append, label)
    while queue:
        queue.pop().fire()
    assert fired == list("abcdef")


def test_cancelled_event_does_not_fire():
    queue = EventQueue()
    fired = []
    keep = queue.schedule(1, fired.append, "keep")
    drop = queue.schedule(1, fired.append, "drop")
    drop.cancel()
    while True:
        event = queue.pop()
        if event is None:
            break
        event.fire()
    assert fired == ["keep"]
    assert keep.tick == 1


def test_peek_tick_skips_cancelled():
    queue = EventQueue()
    first = queue.schedule(1, lambda: None)
    queue.schedule(2, lambda: None)
    first.cancel()
    assert queue.peek_tick() == 2


def test_len_counts_only_live_events():
    queue = EventQueue()
    events = [queue.schedule(i, lambda: None) for i in range(5)]
    events[0].cancel()
    events[3].cancel()
    assert len(queue) == 3


def test_negative_tick_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(-1, lambda: None)


def test_empty_queue_pop_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_tick() is None
    assert not queue


def test_tie_break_is_insertion_order_not_event_comparison():
    """Same-tick ordering comes from bucket FIFO position alone.

    The tuple-heap queue needed an ``Event.__lt__`` for heap pushes; the
    bucketed queue orders bare tick ints and must never compare Event
    objects. This pins both halves: the comparator stays deleted, and
    insertion order survives a mix of schedule()/schedule_cb() entries
    plus an interleaved cancellation.
    """
    assert "__lt__" not in Event.__dict__

    queue = EventQueue()
    fired = []
    queue.schedule(7, fired.append, "a")
    queue.schedule_cb(7, lambda: fired.append("b"))
    dropped = queue.schedule(7, fired.append, "DROPPED")
    queue.schedule(7, fired.append, "c")
    queue.schedule_cb(7, lambda: fired.append("d"))
    dropped.cancel()
    while queue:
        queue.pop().fire()
    assert fired == ["a", "b", "c", "d"]


def test_schedule_cb_token_cancels_and_goes_stale():
    queue = EventQueue()
    fired = []
    token = queue.schedule_cb(3, lambda: fired.append("x"))
    assert queue.cancel_token(token)
    assert not queue.cancel_token(token), "second cancel must be a stale no-op"
    assert queue.pop() is None
    assert fired == []


def test_token_goes_stale_after_fire():
    queue = EventQueue()
    fired = []
    token = queue.schedule_cb(1, lambda: fired.append("x"))
    queue.pop().fire()
    assert fired == ["x"]
    # The slot's generation was bumped when it fired; the token must not
    # cancel whatever reuses the slot next.
    assert not queue.cancel_token(token)
    relay = queue.schedule_cb(2, lambda: fired.append("y"))
    assert not queue.cancel_token(token)
    queue.pop().fire()
    assert fired == ["x", "y"]
    assert queue.cancel_token(relay) is False


def test_peek_tick_retires_tombstones_with_cancel_accounting():
    """peek_tick's garbage sweep uses the same bookkeeping as pop/compact:
    tombstones it walks past are freed, their generation bumped, and the
    cancelled count decremented — not just skipped."""
    queue = EventQueue()
    first = queue.schedule(5, lambda: None)
    second = queue.schedule(5, lambda: None)
    queue.schedule(9, lambda: None)
    first.cancel()
    second.cancel()
    assert queue._cancelled == 2
    free_before = len(queue._free)
    assert queue.peek_tick() == 9
    # Both leading tombstones were retired, not merely stepped over.
    assert queue._cancelled == 0
    assert len(queue._free) == free_before + 2
    assert len(queue) == 1


def test_peek_tick_garbage_sweep_keeps_later_events():
    queue = EventQueue()
    cancelled = [queue.schedule(2, lambda: None) for _ in range(4)]
    keep = queue.schedule(2, lambda: None)
    for event in cancelled:
        event.cancel()
    assert queue.peek_tick() == 2
    assert queue._cancelled == 0
    popped = queue.pop()
    assert popped is keep
    assert queue.pop() is None


def test_compaction_drops_tombstones_and_preserves_order():
    queue = EventQueue()
    fired = []
    keepers = []
    victims = []
    for i in range(200):
        target = keepers if i % 4 == 0 else victims
        target.append(queue.schedule(10 + (i % 7), fired.append, i))
    for event in victims:
        event.cancel()
    # Cancelling 150 of 200 crossed the garbage threshold (tombstones
    # may never outnumber live events for long): most were compacted
    # away, and live/garbage accounting stayed exact throughout.
    assert queue._cancelled < len(victims) // 2
    assert len(queue) == len(keepers)
    while queue:
        queue.pop().fire()
    # Draining retired the residual tombstones through the same books.
    assert queue._cancelled == 0
    assert queue.pop() is None
    expected = sorted(
        (event.tick, position, event.args[0])
        for position, event in enumerate(keepers)
    )
    assert fired == [value for _tick, _pos, value in expected]


def test_cancelled_only_queue_is_falsy_but_slots_recycle():
    queue = EventQueue()
    events = [queue.schedule(4, lambda: None) for _ in range(3)]
    for event in events:
        event.cancel()
    assert not queue
    assert len(queue) == 0
    # The swept slots are reusable immediately.
    token = queue.schedule_cb(6, lambda: None)
    assert len(queue) == 1
    assert queue.cancel_token(token)
