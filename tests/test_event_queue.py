"""Unit tests for the event queue."""

import pytest

from repro.sim.event import EventQueue


def test_events_fire_in_tick_order():
    queue = EventQueue()
    fired = []
    queue.schedule(30, fired.append, "c")
    queue.schedule(10, fired.append, "a")
    queue.schedule(20, fired.append, "b")
    while True:
        event = queue.pop()
        if event is None:
            break
        event.fire()
    assert fired == ["a", "b", "c"]


def test_same_tick_events_fire_in_insertion_order():
    queue = EventQueue()
    fired = []
    for label in "abcdef":
        queue.schedule(5, fired.append, label)
    while queue:
        queue.pop().fire()
    assert fired == list("abcdef")


def test_cancelled_event_does_not_fire():
    queue = EventQueue()
    fired = []
    keep = queue.schedule(1, fired.append, "keep")
    drop = queue.schedule(1, fired.append, "drop")
    drop.cancel()
    while True:
        event = queue.pop()
        if event is None:
            break
        event.fire()
    assert fired == ["keep"]
    assert keep.tick == 1


def test_peek_tick_skips_cancelled():
    queue = EventQueue()
    first = queue.schedule(1, lambda: None)
    queue.schedule(2, lambda: None)
    first.cancel()
    assert queue.peek_tick() == 2


def test_len_counts_only_live_events():
    queue = EventQueue()
    events = [queue.schedule(i, lambda: None) for i in range(5)]
    events[0].cancel()
    events[3].cancel()
    assert len(queue) == 3


def test_negative_tick_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(-1, lambda: None)


def test_empty_queue_pop_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_tick() is None
    assert not queue
