"""Tests for the transaction-span telemetry layer (repro.obs).

Covers the span lifecycle (including under fault injection — dropped and
duplicated messages must not leak open spans), the Perfetto exporter's
schema, the coverage/latency matrix, and the stats-layer fixes that ride
along (histogram merge re-binning, read-only empty histograms, no-op
metrics mode).
"""

import json

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.obs import (
    CoverageMatrix,
    SpanRecorder,
    Telemetry,
    build_trace,
    render_matrix,
    validate_trace,
    write_trace,
)
from repro.sim.stats import EMPTY_HISTOGRAM, NULL_STATS, Histogram, Stats
from repro.testing.chaos import run_chaos_campaign
from repro.xg.interface import XGVariant


# -- span recorder unit behavior ---------------------------------------------


def test_span_lifecycle_basics():
    rec = SpanRecorder()
    span = rec.start("accel_get", "xg", 0x1000, 10, req="GetM")
    assert span.open and span.duration is None
    assert rec.open_count == 1
    rec.phase(span, "translated", 12)
    rec.phase(span, "host_granted", 30)
    rec.finish(span, 42, grant="M")
    assert not span.open
    assert span.duration == 32
    assert span.status == "ok"
    assert span.phase_tick("host_granted") == 30
    assert span.meta == {"req": "GetM", "grant": "M"}
    assert rec.open_count == 0 and rec.finished_total == 1
    assert rec.by_kind("accel_get") == [span]


def test_span_finish_is_idempotent():
    rec = SpanRecorder()
    span = rec.start("probe", "xg", 0x40, 5)
    rec.finish(span, 20, status="timeout")
    rec.finish(span, 99, status="ok")  # late close after a race: ignored
    rec.phase(span, "too_late", 100)  # phases after close: ignored
    assert span.end == 20 and span.status == "timeout"
    assert span.phases == []
    assert rec.finished_total == 1


def test_span_recorder_capacity_cap():
    rec = SpanRecorder(capacity=4)
    for i in range(10):
        rec.finish(rec.start("op", "cpu", i, i), i + 1)
    assert len(rec.closed) == 4
    assert rec.dropped == 6
    assert rec.finished_total == 10  # the running total is exact


def test_drain_closes_leftovers_as_orphaned():
    rec = SpanRecorder()
    kept_open = rec.start("accel_get", "xg", 0x80, 3)
    rec.finish(rec.start("op", "cpu", 0x40, 1), 9)
    leaked = rec.drain(50)
    assert leaked == [kept_open]
    assert kept_open.status == "orphaned" and kept_open.end == 50
    assert rec.drain(60) == []  # second drain finds nothing


def test_latency_histograms_by_kind():
    rec = SpanRecorder()
    for latency in (4, 8, 100):
        rec.finish(rec.start("probe", "xg", 0, 0), latency)
    rec.finish(rec.start("op_load", "cpu", 0, 10), 30)
    hists = rec.latency_histograms(bucket_width=8)
    assert set(hists) == {"probe", "op_load"}
    assert hists["probe"].count == 3
    assert hists["probe"].max == 100
    assert hists["op_load"].mean == 20


# -- telemetry hub -----------------------------------------------------------


def _small_system(**kw):
    return build_system(SystemConfig(org=AccelOrg.XG, n_cpus=1, n_accel_cores=1, **kw))


def test_telemetry_attach_detach():
    system = _small_system()
    assert system.sim.obs is None
    obs = Telemetry(system.sim)
    assert system.sim.obs is obs
    obs.detach()
    assert system.sim.obs is None


def test_telemetry_records_simple_transaction():
    system = _small_system()
    obs = Telemetry(system.sim)
    system.accel_seqs[0].store(0x1000, 7)
    system.cpu_seqs[0].load(0x2000)
    system.sim.run()
    orphans = obs.finalize()
    assert orphans == []
    assert obs.spans.finished_total >= 2
    kinds = {span.kind for span in obs.spans.closed}
    assert "accel_get" in kinds
    assert "op_load" in kinds
    get_span = obs.spans.by_kind("accel_get")[0]
    assert get_span.status == "ok"
    assert get_span.phase_tick("translated") is not None
    assert get_span.phase_tick("host_granted") is not None
    assert obs.transitions  # controller hooks recorded (state, event) pairs
    counts = obs.transition_counts()
    assert sum(counts.values()) == len(obs.transitions)


def test_transition_cap_counts_overflow():
    system = _small_system()
    obs = Telemetry(system.sim, max_transitions=5)
    system.accel_seqs[0].store(0x1000, 7)
    system.cpu_seqs[0].load(0x2000)
    system.sim.run()
    assert len(obs.transitions) == 5
    assert obs.transitions_dropped > 0


def test_series_sampling_does_not_keep_sim_alive():
    system = _small_system()
    obs = Telemetry(system.sim)
    obs.start_series(50)
    system.cpu_seqs[0].load(0x3000)
    system.sim.run()  # must terminate: sampler re-arms only while live
    obs.finalize()
    assert len(obs.series) >= 2
    assert all("open_tbes" in s and "stalled_msgs" in s for s in obs.series)
    ticks = [s["tick"] for s in obs.series]
    assert ticks == sorted(ticks)


def test_summary_is_picklable_and_complete():
    import pickle

    system = _small_system()
    obs = Telemetry(system.sim)
    system.accel_seqs[0].store(0x1000, 1)
    system.sim.run()
    obs.finalize()
    summary = obs.summary()
    clone = pickle.loads(pickle.dumps(summary))
    assert clone["spans_closed"] == obs.spans.finished_total
    assert clone["spans_open"] == 0
    assert "accel_get" in clone["span_hists"]


# -- span lifecycle under fault injection ------------------------------------


@pytest.mark.parametrize("faults", [
    {"drop": 0.15},
    {"duplicate": 0.2},
    {"drop": 0.1, "duplicate": 0.1, "delay": 0.1},
])
def test_no_span_leaks_under_link_faults(faults):
    """Dropped and duplicated messages must not leak open spans: after the
    drain phase every probe/get/put span closed through its own lifecycle
    (ok, timeout, absorbed, ...) — finalize() finds nothing to orphan."""
    result, system = run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults=faults,
        seed=5,
        duration=20_000,
        cpu_ops=300,
        telemetry=True,
    )
    assert result.host_safe
    assert result.faults_total > 0
    assert result.spans_closed > 0
    assert result.spans_orphaned == 0
    obs = system.sim.obs
    assert obs.spans.open_count == 0
    assert len(obs.faults) == result.faults_total


def test_probe_timeout_span_marked_not_leaked():
    """Exhausted probe retries close the span as ``timeout`` (with the
    retry phases on it) — never leave it open for finalize() to orphan."""
    from repro.memory.datablock import DataBlock
    from repro.protocols.mesi.messages import MesiMsg
    from repro.sim.network import FixedLatency, Network
    from repro.sim.simulator import Simulator
    from repro.xg.errors import XGErrorLog
    from repro.xg.interface import AccelMsg
    from repro.xg.mesi_xg import MesiCrossingGuard
    from repro.xg.permissions import PagePermission, PermissionTable

    from tests.helpers import RawAgent

    sim = Simulator(seed=0)
    obs = Telemetry(sim)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = MesiCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        permissions=PermissionTable(default=PagePermission.READ_WRITE),
        error_log=XGErrorLog(),
        accel_timeout=100,
        probe_retries=2,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    RawAgent(sim, "l1.peer", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")

    data = DataBlock()
    data.write_byte(0, 3)
    accel.send(AccelMsg.GetM, 0x4000, "xg", "accel_request")
    sim.run(max_ticks=sim.tick + 50, final_check=False)
    l2.send(MesiMsg.DataM, 0x4000, "xg", "response", data=data)
    sim.run(max_ticks=sim.tick + 50, final_check=False)
    l2.send(MesiMsg.Fwd_GetM, 0x4000, "xg", "forward", requestor="l1.peer")
    sim.run()  # the accelerator never answers: retries exhaust, surrogate fires

    assert obs.finalize() == []  # nothing left open to orphan
    (probe,) = obs.spans.by_kind("probe")
    assert probe.status == "timeout"
    assert probe.phase_tick("forwarded") is not None
    assert probe.phase_tick("retry_1") is not None
    assert probe.phase_tick("retry_2") is not None


# -- perfetto exporter -------------------------------------------------------


def _traced_chaos():
    return run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults={"drop": 0.1, "duplicate": 0.1},
        seed=3,
        duration=15_000,
        cpu_ops=300,
        telemetry=True,
        series_interval=1000,
    )


def test_build_trace_schema_is_valid():
    result, system = _traced_chaos()
    assert result.host_safe
    payload = build_trace(
        system.sim.obs, fault_plan=system.config.fault_plan,
        label=system.config.label,
    )
    assert validate_trace(payload) == []
    events = payload["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i", "C"}
    # Every span became a complete event; fault instants and counter
    # samples are all present.
    x_names = [e["name"] for e in events if e["ph"] == "X"]
    assert any(name.startswith("accel_get") or name == "accel_get"
               for name in x_names)
    assert sum(1 for e in events if e["ph"] == "i") >= len(system.sim.obs.faults)
    assert any(e["ph"] == "C" for e in events)


def test_write_trace_roundtrip(tmp_path):
    _result, system = _traced_chaos()
    path = tmp_path / "trace.json"
    count = write_trace(
        build_trace(system.sim.obs, fault_plan=system.config.fault_plan),
        path,
    )
    with open(path) as fh:
        loaded = json.load(fh)
    assert len(loaded["traceEvents"]) == count
    assert loaded["displayTimeUnit"] == "ms"
    assert validate_trace(loaded) == []


def test_validate_trace_flags_malformed_events():
    bad = {
        "traceEvents": [
            {"ph": "X", "name": "no-dur", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "Z", "name": "bad-phase", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "i", "name": "bad-scope", "pid": 1, "tid": 1, "ts": 0,
             "s": "x"},
            {"ph": "C", "name": "bad-args", "pid": 1, "tid": 1, "ts": 0,
             "args": {"v": "not-a-number"}},
            {"ph": "X", "name": "negative", "pid": 1, "tid": 1, "ts": -5,
             "dur": 1},
        ]
    }
    problems = validate_trace(bad)
    assert len(problems) == 5


def test_write_trace_refuses_invalid_payload(tmp_path):
    with pytest.raises(ValueError):
        write_trace({"traceEvents": [{"ph": "X"}]}, tmp_path / "bad.json")


def test_validate_trace_checks_series_and_fault_window_args():
    bad = {
        "traceEvents": [
            # series counters must carry exactly args == {"value": n}
            {"ph": "C", "name": "events_fired", "cat": "series", "pid": 4,
             "tid": 0, "ts": 0, "args": {"value": 1, "extra": 2}},
            {"ph": "C", "name": "open_spans", "cat": "series", "pid": 4,
             "tid": 0, "ts": 0, "args": {"count": 3}},
            # fault windows must carry a numeric rate in [0, 1]
            {"ph": "X", "name": "window:drop", "cat": "fault-window",
             "pid": 3, "tid": 1, "ts": 0, "dur": 10, "args": {"rate": 1.5}},
            {"ph": "X", "name": "window:dup", "cat": "fault-window",
             "pid": 3, "tid": 1, "ts": 0, "dur": 10, "args": {}},
        ]
    }
    problems = validate_trace(bad)
    assert len(problems) == 4
    assert sum("series counter" in p for p in problems) == 2
    assert sum("fault-window" in p for p in problems) == 2

    good = {
        "traceEvents": [
            {"ph": "C", "name": "events_fired", "cat": "series", "pid": 4,
             "tid": 0, "ts": 5, "args": {"value": 12}},
            # occupancy counters keep their own arg names: not series-gated
            {"ph": "C", "name": "occupancy.l2", "cat": "occupancy", "pid": 4,
             "tid": 0, "ts": 5, "args": {"busy_ticks": 3}},
            {"ph": "X", "name": "window:drop", "cat": "fault-window",
             "pid": 3, "tid": 1, "ts": 0, "dur": 10, "args": {"rate": 0.25}},
        ]
    }
    assert validate_trace(good) == []


def test_trace_with_empty_series_still_validates():
    # A run whose sampler never fired (series_interval=0) must export a
    # valid trace with zero "series" counter events — the empty-series
    # regression the validator additions must not break.
    result, system = run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults={"drop": 0.1},
        seed=3,
        duration=8_000,
        cpu_ops=150,
        telemetry=True,
    )
    assert result.host_safe
    assert system.sim.obs.series == []
    payload = build_trace(system.sim.obs)
    assert validate_trace(payload) == []
    assert not any(e.get("cat") == "series" for e in payload["traceEvents"])


# -- coverage matrix ---------------------------------------------------------


def test_coverage_matrix_accumulates_and_renders():
    from repro.eval.experiments import run_stress_coverage

    result = run_stress_coverage(seeds=range(1), ops_per_run=300, telemetry=True)
    matrix = result["matrix"]
    assert matrix.cells
    for cell in matrix.cells.values():
        assert cell.runs >= 1
        assert 0.0 < cell.fraction <= 1.0
    rendered = render_matrix(matrix)
    assert "transition coverage" in rendered
    assert "span latency percentiles" in rendered
    # XG configs record accel-side transaction spans.
    assert "accel_get" in rendered


def test_coverage_matrix_merge_pools_runs():
    from repro.eval.experiments import run_stress_coverage

    a = run_stress_coverage(seeds=range(1), ops_per_run=200, telemetry=True)["matrix"]
    b = run_stress_coverage(seeds=[1], ops_per_run=200, telemetry=True)["matrix"]
    solo = a.cells["mesi/xg-full-L1"].spans_closed
    a.merge(b)
    merged_cell = a.cells["mesi/xg-full-L1"]
    assert merged_cell.runs == 2
    assert merged_cell.spans_closed > solo


def test_render_matrix_warns_on_dropped_spans():
    from repro.eval.experiments import run_stress_coverage

    matrix = run_stress_coverage(
        seeds=range(1), ops_per_run=200, telemetry=True
    )["matrix"]
    clean = render_matrix(matrix)
    assert "WARNING" not in clean

    # Simulate a run whose bounded span ring evicted closed spans.
    matrix.cells["mesi/xg-full-L1"].spans_dropped = 7
    warned = render_matrix(matrix)
    assert "WARNING" in warned
    assert "mesi/xg-full-L1 (7)" in warned
    assert "span_capacity" in warned


def test_telemetry_exposes_spans_dropped():
    from repro.sim.simulator import Simulator

    tel = Telemetry(Simulator(), span_capacity=2)
    rec = tel.spans
    for i in range(4):
        span = rec.start("probe", "xg", 0x40 * i, i)
        rec.finish(span, i + 5)
    assert tel.spans_dropped == 2
    assert tel.summary()["spans_dropped"] == 2


def test_stress_result_stays_json_serializable_without_telemetry():
    from repro.eval.experiments import run_stress_coverage

    result = run_stress_coverage(seeds=range(1), ops_per_run=150)
    assert "matrix" not in result
    json.dumps(result, sort_keys=True)


# -- stats layer fixes -------------------------------------------------------


def test_histogram_merge_matching_widths():
    a, b = Histogram(8), Histogram(8)
    a.observe(4)
    a.observe(20)
    b.observe(7)
    a.merge_into(b)
    assert b.count == 3
    assert b.buckets == {0: 2, 2: 1}
    assert b.min == 4 and b.max == 20


def test_histogram_merge_rebins_on_width_mismatch():
    """Regression: mismatched widths used to sum bucket indices directly,
    silently corrupting the distribution."""
    fine, coarse = Histogram(4), Histogram(16)
    fine.observe(5)  # fine bucket 1 -> coarse bucket 0
    fine.observe(18)  # fine bucket 4 -> coarse bucket 1
    fine.observe(33)  # fine bucket 8 -> coarse bucket 2
    fine.merge_into(coarse)
    assert coarse.buckets == {0: 1, 1: 1, 2: 1}
    assert coarse.count == 3 and coarse.total == 56
    # and the other direction (coarse into fine) stays deterministic
    back = Histogram(4)
    coarse.merge_into(back)
    assert back.count == 3
    assert sum(back.buckets.values()) == 3


def test_stats_histogram_unknown_name_is_readonly():
    """Regression: Stats.histogram() of a never-observed name returned a
    fresh unattached Histogram — observations into it vanished."""
    stats = Stats("c")
    hist = stats.histogram("never_observed")
    assert hist is EMPTY_HISTOGRAM
    assert hist.count == 0 and hist.mean == 0.0
    with pytest.raises(TypeError):
        hist.observe(5)
    assert "never_observed" not in stats.histograms  # nothing registered


def test_stats_sink_prebinding():
    stats = Stats("c")
    sink = stats.sink("hits")
    sink.inc()
    sink.inc(3)
    assert stats.get("hits") == 4


def test_null_stats_discards_everything():
    NULL_STATS.inc("x")
    NULL_STATS.observe("lat", 5)
    NULL_STATS.sink("y").inc()
    NULL_STATS.ensure_histogram("z").observe(1)
    assert NULL_STATS.as_dict() == {}
    assert NULL_STATS.counters is None  # hot paths key off this


def test_metrics_off_system_runs_and_reports_empty():
    system = _small_system(metrics=False)
    assert system.sim.metrics_enabled is False
    assert system.xg.stats is NULL_STATS
    done = []
    system.accel_seqs[0].store(0x1000, 9)
    system.cpu_seqs[0].load(0x1000, callback=lambda *a: done.append(a))
    system.sim.run()
    assert done  # the load completed despite zero stats plumbing
    assert system.xg.stats.as_dict() == {}


def test_metrics_off_matches_metrics_on_timing():
    """Disabling metrics must not perturb simulated behavior — same final
    tick, same event count."""
    ticks = {}
    for metrics in (True, False):
        system = _small_system(metrics=metrics, seed=11)
        system.accel_seqs[0].store(0x4000, 2)
        system.cpu_seqs[0].load(0x4000)
        system.sim.run()
        ticks[metrics] = (system.sim.tick, system.sim._events_fired)
    assert ticks[True] == ticks[False]
