"""Directed race tests for the MESI L1: each classic race is scripted
message-by-message with a RawAgent playing the L2/directory."""

import pytest

from repro.host.cpu import Sequencer
from repro.memory.datablock import DataBlock
from repro.protocols.mesi.l1 import L1State, MesiL1
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator

from tests.helpers import RawAgent

ADDR = 0x3000


def _build():
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), name="host")
    l2 = RawAgent(sim, "l2", net)
    peer = RawAgent(sim, "peer", net)
    l1 = MesiL1(sim, "l1", net, "l2", num_sets=2, assoc=1)
    net.attach(l1)
    seq = Sequencer(sim, "cpu")
    seq.attach(l1)
    return sim, net, l2, peer, l1, seq


def _data(value=0):
    block = DataBlock()
    block.write_byte(0, value)
    return block


def _go(sim):
    sim.run(final_check=False)


def test_load_miss_happy_path_unblocks():
    sim, net, l2, peer, l1, seq = _build()
    out = []
    seq.load(ADDR, lambda m, d: out.append(d.read_byte(0)))
    _go(sim)
    assert l2.of_type(MesiMsg.GetS)
    l2.send(MesiMsg.DataS, ADDR, "l1", "response", data=_data(4))
    _go(sim)
    assert out == [4]
    assert l1.block_state(ADDR) is L1State.S
    assert l2.of_type(MesiMsg.UnblockS)


def test_getm_counts_invacks_before_and_after_data():
    """InvAcks may arrive before the DataM that says how many to expect."""
    sim, net, l2, peer, l1, seq = _build()
    done = []
    seq.store(ADDR, 9, lambda m, d: done.append(1))
    _go(sim)
    # one ack arrives FIRST
    peer.send(MesiMsg.InvAck, ADDR, "l1", "response")
    _go(sim)
    assert not done
    # now data announcing 2 acks
    l2.send(MesiMsg.DataM, ADDR, "l1", "response", data=_data(), ack_count=2)
    _go(sim)
    assert not done, "still one ack short"
    peer.send(MesiMsg.InvAck, ADDR, "l1", "response")
    _go(sim)
    assert done
    assert l1.block_state(ADDR) is L1State.M
    assert l2.of_type(MesiMsg.UnblockX)


def test_smad_inv_race_restarts_as_plain_getm():
    """Upgrade loses: Inv arrives while SM_AD; ack the winner, drop the
    stale S copy, and complete later with fresh data (ISI-style race)."""
    sim, net, l2, peer, l1, seq = _build()
    # get to S first
    seq.load(ADDR)
    _go(sim)
    l2.send(MesiMsg.DataS, ADDR, "l1", "response", data=_data(1))
    _go(sim)
    # upgrade
    done = []
    seq.store(ADDR, 2, lambda m, d: done.append(d.read_byte(0)))
    _go(sim)
    assert l1.block_state(ADDR) is L1State.SM_AD
    # the race: a remote GetM won; L2 invalidates us
    l2.send(MesiMsg.Inv, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(MesiMsg.InvAck), "winner must get our ack"
    assert l1.block_state(ADDR) is L1State.IM_AD
    # eventually fresh data arrives from the new owner
    peer.send(MesiMsg.DataM, ADDR, "l1", "response", data=_data(50), ack_count=0)
    _go(sim)
    assert done and done[0] == 2  # our store applied on top of value 50
    assert l1.cache.lookup(ADDR).data.read_byte(0) == 2


def _to_modified(sim, l2, l1, seq, value=7):
    seq.store(ADDR, value)
    _go(sim)
    l2.send(MesiMsg.DataM, ADDR, "l1", "response", data=_data(), ack_count=0)
    _go(sim)
    assert l1.block_state(ADDR) is L1State.M


def test_mia_fwd_gets_supplies_data_then_nack_closes():
    """Replacement races Fwd_GetS: serve it (DataS + CopyBack), then the
    directory Nacks our stale PutM."""
    sim, net, l2, peer, l1, seq = _build()
    _to_modified(sim, l2, l1, seq)
    seq.load(ADDR + 64 * 2)  # same set (2 sets, assoc 1) -> evict ADDR
    _go(sim)
    assert l2.of_type(MesiMsg.PutM)
    assert l1.block_state(ADDR) is L1State.MI_A
    l2.send(MesiMsg.Fwd_GetS, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    data_out = peer.of_type(MesiMsg.DataS)
    assert data_out and data_out[0].data.read_byte(0) == 7
    copyback = l2.of_type(MesiMsg.CopyBack)
    assert copyback and copyback[0].dirty
    assert l1.block_state(ADDR) is L1State.II_A
    l2.send(MesiMsg.WBNack, ADDR, "l1", "forward")
    _go(sim)
    assert l1.block_state(ADDR) is L1State.I


def test_mia_fwd_getm_hands_over_ownership():
    sim, net, l2, peer, l1, seq = _build()
    _to_modified(sim, l2, l1, seq)
    seq.load(ADDR + 64 * 2)
    _go(sim)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    data_out = peer.of_type(MesiMsg.DataM)
    assert data_out and data_out[0].data.read_byte(0) == 7
    assert l1.block_state(ADDR) is L1State.II_A


def test_mia_recall_during_writeback():
    sim, net, l2, peer, l1, seq = _build()
    _to_modified(sim, l2, l1, seq)
    seq.load(ADDR + 64 * 2)
    _go(sim)
    l2.send(MesiMsg.Recall, ADDR, "l1", "forward")
    _go(sim)
    cbi = l2.of_type(MesiMsg.CopyBackInv)
    assert cbi and cbi[0].dirty and cbi[0].data.read_byte(0) == 7
    assert l1.block_state(ADDR) is L1State.II_A


def test_sia_inv_race_acks_winner():
    """PutS races an Inv: ack the requestor from SI_A, absorb the Nack."""
    sim, net, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesiMsg.DataS, ADDR, "l1", "response", data=_data())
    _go(sim)
    seq.load(ADDR + 64 * 2)  # evict the S block -> PutS
    _go(sim)
    assert l1.block_state(ADDR) is L1State.SI_A
    l2.send(MesiMsg.Inv, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(MesiMsg.InvAck)
    assert l1.block_state(ADDR) is L1State.II_A
    l2.send(MesiMsg.WBNack, ADDR, "l1", "forward")
    _go(sim)
    assert l1.block_state(ADDR) is L1State.I


def test_iia_still_acks_second_invalidation():
    """After a downgrade during writeback, the L2 may still consider us a
    sharer: II_A must keep answering Invs."""
    sim, net, l2, peer, l1, seq = _build()
    _to_modified(sim, l2, l1, seq)
    seq.load(ADDR + 64 * 2)
    _go(sim)
    l2.send(MesiMsg.Fwd_GetS, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert l1.block_state(ADDR) is L1State.II_A
    l2.send(MesiMsg.Inv, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert len(peer.of_type(MesiMsg.InvAck)) == 1
    l2.send(MesiMsg.WBNack, ADDR, "l1", "forward")
    _go(sim)
    assert l1.block_state(ADDR) is L1State.I


def test_owner_fwd_gets_downgrades_and_copies_back():
    sim, net, l2, peer, l1, seq = _build()
    _to_modified(sim, l2, l1, seq, value=3)
    l2.send(MesiMsg.Fwd_GetS, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert l1.block_state(ADDR) is L1State.S
    assert not l1.cache.lookup(ADDR).dirty, "ownership moved to the L2"
    assert peer.of_type(MesiMsg.DataS)
    assert l2.of_type(MesiMsg.CopyBack)[0].dirty


def test_data_e_grant_then_silent_upgrade_then_recall():
    sim, net, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesiMsg.DataE, ADDR, "l1", "response", data=_data(1))
    _go(sim)
    assert l1.block_state(ADDR) is L1State.E
    seq.store(ADDR, 2)  # silent E->M
    _go(sim)
    l2.send(MesiMsg.Recall, ADDR, "l1", "forward")
    _go(sim)
    cbi = l2.of_type(MesiMsg.CopyBackInv)
    assert cbi and cbi[0].dirty and cbi[0].data.read_byte(0) == 2
