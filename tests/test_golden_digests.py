"""Golden-run equivalence suite + committed digest regression gate.

Two layers of protection for the compiled dispatch fast path:

1. **Equivalence** — every scenario digest (transition sequence, final
   memory image, stats) must be identical under ``compiled`` and
   ``legacy`` dispatch, across all hosts x accelerator organizations.
   This is the tentpole's proof obligation.
2. **Pinned digests** — seed-run digests for three representative
   configs are committed in ``tests/golden/digests.json``. Any change
   that perturbs a transition sequence fails here until the digests are
   deliberately refreshed (``python -m repro golden --update``) and the
   behavior change is explained in the PR.
"""

import os

import pytest

from repro.host.config import AccelOrg, HostProtocol
from repro.testing.golden import (
    PINNED_CONFIGS,
    compare_modes,
    golden_run,
    load_pinned,
)
from repro.xg.interface import XGVariant

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "digests.json")

STRESS_CASES = [(host, org) for host in HostProtocol for org in AccelOrg]


@pytest.mark.parametrize(
    "host,org", STRESS_CASES,
    ids=[f"{h.name.lower()}-{o.name.lower()}" for h, o in STRESS_CASES],
)
def test_stress_equivalence_all_hosts_all_orgs(host, org):
    compiled, legacy = compare_modes("stress", host, org, ops=150)
    assert compiled == legacy
    # A trivially-empty run would vacuously pass; demand real traffic.
    assert compiled["transitions_count"] > 100


@pytest.mark.parametrize("host", list(HostProtocol), ids=lambda h: h.name.lower())
def test_fuzz_equivalence(host):
    """Adversarial traffic exercises the error/guard paths too."""
    compiled, legacy = compare_modes("fuzz", host, ops=150)
    assert compiled == legacy
    assert compiled["transitions_count"] > 100


@pytest.mark.parametrize(
    "variant", list(XGVariant), ids=lambda v: v.name.lower()
)
def test_chaos_equivalence_both_variants(variant):
    """Link faults + flooding: the harshest message orderings we have."""
    compiled, legacy = compare_modes(
        "chaos", HostProtocol.MESI, xg_variant=variant, ops=120
    )
    assert compiled == legacy
    assert compiled["transitions_count"] > 100


def test_equivalence_covers_distinct_behaviors():
    """Different configs must produce different digests — otherwise the
    equivalence assertions above could be comparing a constant."""
    a = golden_run("stress", HostProtocol.MESI, AccelOrg.XG, ops=150)
    b = golden_run("stress", HostProtocol.HAMMER, AccelOrg.XG, ops=150)
    assert a["transitions"] != b["transitions"]
    assert a["stats"] != b["stats"]


# -- committed digest regression ---------------------------------------------


def _pinned():
    return load_pinned(GOLDEN_PATH)


def test_pinned_digest_file_shape():
    pinned = _pinned()
    assert set(pinned["digests"]) == {
        f"{scenario}/{host.name.lower()}/{org.name.lower()}"
        for scenario, host, org in PINNED_CONFIGS
    }
    for digest in pinned["digests"].values():
        assert set(digest) >= {
            "transitions", "transitions_count", "memory", "stats", "final_tick"
        }


@pytest.mark.parametrize(
    "scenario,host,org", PINNED_CONFIGS,
    ids=[f"{s}-{h.name.lower()}-{o.name.lower()}" for s, h, o in PINNED_CONFIGS],
)
def test_pinned_digests_unchanged(scenario, host, org):
    """Seed-run behavior is pinned. If this fails, a change perturbed the
    transition sequences / memory image / stats of a golden run: either
    fix the regression, or — if the change is deliberate — refresh with
    `python -m repro golden --update` and say so in the PR."""
    pinned = _pinned()
    label = f"{scenario}/{host.name.lower()}/{org.name.lower()}"
    fresh = golden_run(
        scenario, host, org, seed=pinned["seed"], ops=pinned["ops"]
    )
    assert fresh == pinned["digests"][label]
