"""Unit tests for XG support modules: permissions, rate limiter, errors,
interface constants, coverage reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.coverage import CoverageReport
from repro.xg.errors import Guarantee, XGErrorLog
from repro.xg.interface import (
    ACCEL_GET_REQUESTS,
    ACCEL_PUT_REQUESTS,
    ACCEL_RESPONSES,
    AccelMsg,
    legal_data_grants,
)
from repro.xg.permissions import PagePermission, PermissionTable
from repro.xg.rate_limiter import RateLimiter


# -- interface ---------------------------------------------------------------

def test_interface_message_counts_match_paper():
    """Five accel requests, four XG responses, one XG request, three accel
    responses (Section 2.1)."""
    assert len(ACCEL_GET_REQUESTS | ACCEL_PUT_REQUESTS) == 5
    xg_responses = {AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM, AccelMsg.WBAck}
    assert len(xg_responses) == 4
    assert len(ACCEL_RESPONSES) == 3


def test_legal_data_grants():
    assert legal_data_grants(AccelMsg.GetS) == (
        AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM,
    )
    assert AccelMsg.DataS not in legal_data_grants(AccelMsg.GetM)
    with pytest.raises(ValueError):
        legal_data_grants(AccelMsg.PutS)


# -- permissions ---------------------------------------------------------------

def test_permission_lattice():
    assert not PagePermission.NONE.allows_read()
    assert PagePermission.READ.allows_read()
    assert not PagePermission.READ.allows_write()
    assert PagePermission.READ_WRITE.allows_write()


def test_permission_table_grant_revoke():
    table = PermissionTable(page_size=4096, default=PagePermission.NONE)
    table.grant(0x10000, PagePermission.READ_WRITE)
    assert table.allows_write(0x10ABC)  # same page
    assert not table.allows_read(0x20000)
    table.revoke(0x10000)
    assert not table.allows_read(0x10ABC)


def test_permission_table_range_grant():
    table = PermissionTable(page_size=4096, default=PagePermission.NONE)
    table.grant(0x1000, PagePermission.READ, length=3 * 4096)
    assert table.allows_read(0x1000)
    assert table.allows_read(0x3FFF)
    assert not table.allows_read(0x5000)


def test_permission_page_size_validation():
    with pytest.raises(ValueError):
        PermissionTable(page_size=3000)


@given(
    st.integers(min_value=0, max_value=2**30),
    st.sampled_from(list(PagePermission)),
)
def test_permission_applies_to_whole_page(addr, perm):
    table = PermissionTable(page_size=4096, default=PagePermission.NONE)
    table.grant(addr, perm)
    page = table.page_of(addr)
    assert table.lookup(page) is perm
    assert table.lookup(page + 4095) is perm


# -- rate limiter ----------------------------------------------------------------

def test_unlimited_rate_always_admits():
    limiter = RateLimiter()
    assert all(limiter.acquire(t) == 0 for t in range(100))
    assert limiter.admitted == 100


def test_burst_then_throttle():
    limiter = RateLimiter(rate=2, period=100, burst=2)
    assert limiter.acquire(0) == 0
    assert limiter.acquire(0) == 0
    wait = limiter.acquire(0)
    assert wait > 0
    assert limiter.throttled == 1


def test_tokens_refill_over_time():
    limiter = RateLimiter(rate=1, period=10, burst=1)
    assert limiter.acquire(0) == 0
    wait = limiter.acquire(0)
    assert wait > 0
    assert limiter.acquire(wait + 1) == 0  # refilled by then


def test_steady_state_rate_respected():
    limiter = RateLimiter(rate=5, period=100, burst=5)
    admitted = 0
    for tick in range(1000):
        if limiter.acquire(tick) == 0:
            admitted += 1
    # 5 per 100 ticks over 1000 ticks ~ 50 (+burst)
    assert 45 <= admitted <= 60


def test_os_register_rate_change():
    limiter = RateLimiter(rate=1, period=100, burst=1)
    limiter.acquire(0)
    assert limiter.acquire(0) > 0
    limiter.set_rate(100, period=100, burst=100)
    assert limiter.acquire(1) == 0


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        RateLimiter(rate=0)


# -- error log -----------------------------------------------------------------------

def test_error_log_records_and_counts():
    log = XGErrorLog()
    log.report(10, Guarantee.G0A_READ_PERMISSION, 0x40, "no access")
    log.report(20, Guarantee.G2C_TIMEOUT, 0x80, "deaf")
    log.report(30, Guarantee.G2C_TIMEOUT, 0xC0, "deaf again")
    assert len(log) == 3
    assert log.count(Guarantee.G2C_TIMEOUT) == 2
    assert log.by_guarantee()[Guarantee.G0A_READ_PERMISSION] == 1
    assert not log.accel_disabled


def test_error_log_disable_policy():
    log = XGErrorLog(disable_after=2)
    log.report(1, Guarantee.G1A_STABLE_REQUEST, 0x0, "x")
    assert not log.accel_disabled
    log.report(2, Guarantee.G1A_STABLE_REQUEST, 0x0, "y")
    assert log.accel_disabled


# -- coverage report --------------------------------------------------------------------

class _FakeController:
    CONTROLLER_TYPE = "fake"

    def __init__(self, visited, possible):
        self.coverage = dict(visited)
        self._possible = set(possible)

    def possible_transitions(self):
        return self._possible


def test_coverage_fraction_and_missing():
    ctrl = _FakeController({("A", "x"): 3}, [("A", "x"), ("A", "y")])
    report = CoverageReport("fake")
    report.add_instance(ctrl)
    assert report.fraction == 0.5
    assert report.missing == {("A", "y")}


def test_coverage_merge_accumulates():
    a = CoverageReport("fake")
    a.add_instance(_FakeController({("A", "x"): 1}, [("A", "x"), ("A", "y")]))
    b = CoverageReport("fake")
    b.add_instance(_FakeController({("A", "y"): 1}, [("A", "x"), ("A", "y")]))
    a.merge(b)
    assert a.fraction == 1.0
    with pytest.raises(ValueError):
        a.merge(CoverageReport("other"))


# -- context-switch cost ---------------------------------------------------------

def test_context_switch_cost_shapes():
    from repro.host.config import AccelOrg, SystemConfig
    from repro.host.system import build_system
    from repro.xg.interface import XGVariant

    for variant, expect_mirror in (
        (XGVariant.FULL_STATE, True),
        (XGVariant.TRANSACTIONAL, False),
    ):
        system = build_system(
            SystemConfig(org=AccelOrg.XG, xg_variant=variant, n_cpus=1, n_accel_cores=1)
        )
        system.accel_seqs[0].store(0x1000, 1)
        system.sim.run()
        cost = system.xg.context_switch_cost()
        if expect_mirror:
            assert cost["blocks_to_invalidate"] == 1
            assert cost["owned_blocks_to_write_back"] == 1
        else:
            assert cost["blocks_to_invalidate"] == 0
        assert cost["open_transactions_to_drain"] == 0
