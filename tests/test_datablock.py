"""Unit + property tests for DataBlock and address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.datablock import BLOCK_SIZE, DataBlock, block_align, block_offset


def test_new_block_is_zero():
    block = DataBlock()
    assert block.size == BLOCK_SIZE
    assert block.is_zero()


def test_write_read_byte():
    block = DataBlock()
    block.write_byte(5, 0xAB)
    assert block.read_byte(5) == 0xAB
    assert not block.is_zero()


def test_copy_is_independent():
    a = DataBlock()
    a.write_byte(0, 1)
    b = a.copy()
    b.write_byte(0, 2)
    assert a.read_byte(0) == 1
    assert a != b


def test_equality_by_content():
    a = DataBlock()
    b = DataBlock()
    assert a == b
    a.write_byte(3, 7)
    assert a != b
    b.write_byte(3, 7)
    assert a == b


def test_unhashable():
    with pytest.raises(TypeError):
        hash(DataBlock())


def test_zero_clears():
    block = DataBlock(fill=0xFF)
    assert not block.is_zero()
    block.zero()
    assert block.is_zero()


def test_bounds_checks():
    block = DataBlock(size=8)
    with pytest.raises(IndexError):
        block.read_bytes(4, 8)
    with pytest.raises(IndexError):
        block.write_bytes(7, b"xx")
    with pytest.raises(ValueError):
        block.write_byte(0, 300)


def test_invalid_construction():
    with pytest.raises(ValueError):
        DataBlock(size=0)
    with pytest.raises(ValueError):
        DataBlock(fill=256)


@given(st.binary(min_size=1, max_size=256))
def test_from_bytes_roundtrip(raw):
    assert DataBlock.from_bytes(raw).to_bytes() == raw


@given(st.integers(min_value=0, max_value=2**40), st.sampled_from([32, 64, 128, 256]))
def test_block_align_properties(addr, size):
    base = block_align(addr, size)
    assert base % size == 0
    assert base <= addr < base + size
    assert base + block_offset(addr, size) == addr


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=255)),
        max_size=32,
    )
)
def test_write_sequence_matches_reference(writes):
    block = DataBlock()
    reference = bytearray(64)
    for offset, value in writes:
        block.write_byte(offset, value)
        reference[offset] = value
    assert block.to_bytes() == bytes(reference)
