"""Unit tests for the bench regression gate (no timing involved)."""

import json
import os

import pytest

from repro.eval.perf_gate import (
    DEFAULT_TOLERANCE,
    compare_reports,
    format_comparison,
    load_report,
    write_comparison,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "baseline_engine.json"
)


def _report(eps=100_000.0, events=5000, tick=1000, scale=1.0):
    return {
        "events_per_sec": eps * scale,
        "workloads": {
            "ping_pong": {
                "events_per_sec": eps * scale,
                "events": events,
                "final_tick": tick,
            },
        },
    }


def test_equal_reports_pass():
    comparison = compare_reports(_report(), _report())
    assert comparison["passed"]
    assert not comparison["failures"]
    assert all(row["ok"] for row in comparison["rows"])


def test_small_slowdown_within_band_passes():
    comparison = compare_reports(_report(scale=0.80), _report())
    assert comparison["passed"]  # 20% < default 30% band


def test_regression_beyond_band_fails():
    comparison = compare_reports(_report(scale=0.60), _report())
    assert not comparison["passed"]
    assert any("events_per_sec" in f for f in comparison["failures"])
    assert "REGRESSION" in format_comparison(comparison)


def test_speedup_never_fails():
    comparison = compare_reports(_report(scale=3.0), _report())
    assert comparison["passed"]


def test_deterministic_drift_fails_regardless_of_speed():
    current = _report(scale=2.0)
    current["workloads"]["ping_pong"]["events"] += 1
    comparison = compare_reports(current, _report())
    assert not comparison["passed"]
    assert comparison["exact_mismatches"][0]["workload"] == "ping_pong"
    assert "DETERMINISTIC DRIFT" in format_comparison(comparison)


def test_missing_workload_fails():
    current = _report()
    del current["workloads"]["ping_pong"]
    comparison = compare_reports(current, _report())
    assert not comparison["passed"]


def test_bad_tolerance_rejected():
    with pytest.raises(ValueError):
        compare_reports(_report(), _report(), tolerance=1.5)


def test_comparison_roundtrip(tmp_path):
    comparison = compare_reports(_report(), _report())
    out = tmp_path / "gate.json"
    write_comparison(comparison, out)
    assert json.loads(out.read_text())["passed"] is True


def test_committed_baseline_is_gateable():
    """The baseline CI gates against must load and self-compare clean."""
    baseline = load_report(BASELINE_PATH)
    assert baseline["events_per_sec"] > 0
    assert set(baseline["workloads"]) == {
        "ping_pong", "unordered_storm", "timer_churn"
    }
    comparison = compare_reports(baseline, baseline, DEFAULT_TOLERANCE)
    assert comparison["passed"]
