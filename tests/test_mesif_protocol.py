"""Directed tests for the Intel-like MESIF host protocol and its XG port."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.cpu import Sequencer
from repro.host.system import build_system
from repro.memory.main_memory import MainMemory
from repro.protocols.mesif.l1 import FL1State, MesifL1
from repro.protocols.mesif.l2 import FL2State, MesifL2
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.testing.invariants import check_all
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant


class MesifHost:
    def __init__(self, n_cpus=3, l1_sets=4, l1_assoc=2, l2_sets=8, l2_assoc=4, seed=0):
        self.sim = Simulator(seed=seed, deadlock_threshold=500_000)
        self.net = Network(self.sim, FixedLatency(1), name="host")
        self.memory = MainMemory(latency=10)
        self.l2 = MesifL2(self.sim, "l2", self.net, self.memory,
                          num_sets=l2_sets, assoc=l2_assoc)
        self.net.attach(self.l2)
        self.l1s = []
        self.seqs = []
        for i in range(n_cpus):
            l1 = MesifL1(self.sim, f"l1.{i}", self.net, "l2",
                         num_sets=l1_sets, assoc=l1_assoc)
            self.net.attach(l1)
            seq = Sequencer(self.sim, f"cpu.{i}")
            seq.attach(l1)
            self.l1s.append(l1)
            self.seqs.append(seq)

    def load(self, cpu, addr):
        out = {}
        self.seqs[cpu].load(addr, lambda m, d: out.update(data=d))
        self.sim.run()
        return out["data"]

    def store(self, cpu, addr, value):
        self.seqs[cpu].store(addr, value)
        self.sim.run()


def test_first_load_exclusive_then_f_inheritance():
    host = MesifHost()
    host.load(0, 0x1000)
    assert host.l1s[0].block_state(0x1000) is FL1State.E
    host.load(1, 0x1000)  # owner downgrades; requestor inherits F
    assert host.l1s[0].block_state(0x1000) is FL1State.S
    assert host.l1s[1].block_state(0x1000) is FL1State.F
    entry = host.l2.cache.lookup(0x1000, touch=False)
    assert entry.meta["f_holder"] == "l1.1"
    host.load(2, 0x1000)  # cache-to-cache forward from the F holder
    assert host.l1s[1].block_state(0x1000) is FL1State.S
    assert host.l1s[2].block_state(0x1000) is FL1State.F
    assert host.l1s[1].stats.get("f_transfers") == 1


def test_silent_eviction_then_fnack_fallback():
    host = MesifHost(l1_sets=1, l1_assoc=1)
    host.store(0, 0x1000, 7)
    host.load(1, 0x1000)  # l1.1 takes F
    host.load(1, 0x2000)  # silently evicts the F block (1-way cache)
    assert host.l1s[1].block_state(0x1000) is FL1State.I
    assert host.l1s[1].stats.get("silent_sf_evictions") >= 1
    # l2 still records l1.1 as F holder; the forward bounces and the L2
    # serves the data itself.
    data = host.load(2, 0x1000)
    assert data.read_byte(0) == 7
    assert host.l2.stats.get("fnack_fallbacks") == 1
    assert host.l1s[2].block_state(0x1000) is FL1State.F


def test_stale_sharer_invalidation_acked_from_i():
    host = MesifHost(l1_sets=1, l1_assoc=1)
    host.store(0, 0x1000, 1)
    host.load(1, 0x1000)
    host.load(1, 0x2000)  # silent eviction -> conservative sharer list
    host.store(0, 0x1000, 2)  # Inv fan-out hits the stale sharer
    assert host.l1s[1].stats.get("stale_invs_acked") >= 1
    assert host.load(1, 0x1000).read_byte(0) == 2


def test_store_invalidates_f_and_s_holders():
    host = MesifHost()
    host.load(0, 0x1000)
    host.load(1, 0x1000)
    host.load(2, 0x1000)
    host.store(0, 0x1000, 9)
    assert host.l1s[0].block_state(0x1000) is FL1State.M
    for i in (1, 2):
        assert host.l1s[i].block_state(0x1000) is FL1State.I
    assert host.load(2, 0x1000).read_byte(0) == 9


def test_no_puts_messages_exist():
    host = MesifHost(l1_sets=1, l1_assoc=1)
    host.load(0, 0x1000)
    host.load(1, 0x1000)
    host.load(1, 0x2000)  # silent
    from repro.protocols.mesif.messages import MesifMsg

    assert not hasattr(MesifMsg, "PutS")
    assert host.net.stats.get("msg.PutE", 0) + host.net.stats.get("msg.PutM", 0) >= 0


def test_owner_dirty_writeback_path():
    host = MesifHost(l1_sets=1, l1_assoc=1, l2_sets=1, l2_assoc=1)
    host.store(0, 0x1000, 42)
    host.store(0, 0x1040, 43)  # L1 PutM; then L2 eviction to memory
    assert host.memory.peek(0x1000).read_byte(0) == 42


def test_xg_declines_f_role():
    """XG takes a DataF grant as S for the accelerator, and FNacks the
    responder probe — the L2 serves the next reader itself."""
    system = build_system(
        SystemConfig(host=HostProtocol.MESIF, org=AccelOrg.XG, n_cpus=2, n_accel_cores=1)
    )

    def op(seq, kind, addr, value=None):
        out = {}
        if kind == "load":
            seq.load(addr, lambda m, d: out.update(data=d))
        else:
            seq.store(addr, value)
        system.sim.run()
        return out.get("data")

    op(system.cpu_seqs[0], "store", 0x3000, 5)
    op(system.cpu_seqs[0], "load", 0x9000)  # just traffic
    op(system.accel_seqs[0], "load", 0x3000)  # accel becomes "F holder"
    assert system.xg.stats.get("f_grants_taken_as_s") == 1
    data = op(system.cpu_seqs[1], "load", 0x3000)  # Fwd_GetS_F -> XG -> FNack
    assert data.read_byte(0) == 5
    assert system.xg.stats.get("f_roles_declined") == 1
    assert system.directory.stats.get("fnack_fallbacks") == 1
    # the accelerator's S copy survived the declined probe
    data = op(system.accel_seqs[0], "load", 0x3000)
    assert data.read_byte(0) == 5
    assert len(system.error_log) == 0
    check_all(system)


def test_accel_put_s_has_no_host_message():
    system = build_system(
        SystemConfig(
            host=HostProtocol.MESIF, org=AccelOrg.XG,
            accel_l1_sets=1, accel_l1_assoc=1, n_cpus=1, n_accel_cores=1,
        )
    )

    def op(seq, kind, addr, value=None):
        if kind == "load":
            seq.load(addr)
        else:
            seq.store(addr, value)
        system.sim.run()

    op(system.cpu_seqs[0], "store", 0x3000, 1)
    op(system.cpu_seqs[0], "store", 0x9000, 1)  # keep 0x3000 shared later
    op(system.accel_seqs[0], "load", 0x3000)  # accel S/F-as-S... shared grant
    op(system.accel_seqs[0], "load", 0x4000)  # evicts -> accel PutS
    assert system.xg.stats.get("puts_absorbed_no_host_message") >= 0
    assert len(system.error_log) == 0


@pytest.mark.parametrize("seed", range(2))
@pytest.mark.parametrize("variant", [XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL],
                         ids=["full", "txn"])
@pytest.mark.parametrize("levels", [1, 2], ids=["L1", "L2"])
def test_mesif_xg_stress(seed, variant, levels):
    config = SystemConfig(
        host=HostProtocol.MESIF, org=AccelOrg.XG, xg_variant=variant,
        accel_levels=levels, n_cpus=2, n_accel_cores=2,
        cpu_l1_sets=2, cpu_l1_assoc=1, shared_l2_sets=4, shared_l2_assoc=2,
        accel_l1_sets=2, accel_l1_assoc=1, accel_l2_sets=2, accel_l2_assoc=2,
        randomize_latencies=True, seed=seed, deadlock_threshold=300_000,
        accel_timeout=100_000, mem_latency=30,
    )
    system = build_system(config)
    tester = RandomTester(
        system.sim, system.sequencers, [0x1000 + 64 * i for i in range(5)],
        ops_target=2000, store_fraction=0.45,
    )
    tester.run()
    assert tester.loads_checked > 800
    assert len(system.error_log) == 0
    check_all(system)
