"""Unit tests for Crossing Guard's Figure 1 guarantees (G0-G2c).

A RawAgent plays the accelerator (sending scripted/illegal messages) and
another plays the MESI L2, so each guarantee's enforcement is observable
message by message.
"""

import pytest

from repro.memory.datablock import DataBlock
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.errors import Guarantee
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.mesi_xg import MesiCrossingGuard
from repro.xg.permissions import PagePermission, PermissionTable

from tests.helpers import RawAgent

ADDR = 0x4000


def _build(variant=XGVariant.FULL_STATE, default_perm=PagePermission.READ_WRITE,
           accel_timeout=500):
    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    permissions = PermissionTable(default=default_perm)
    xg = MesiCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        variant=variant, permissions=permissions, accel_timeout=accel_timeout,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    RawAgent(sim, "l1.peer", host_net)  # requestor target for probes
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, l2, accel


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _accel_send(accel, mtype, addr=ADDR, port="accel_request", **kw):
    accel.send(mtype, addr, "xg", port, **kw)


def _step(sim, ticks=50):
    """Advance a bounded window so armed XG timeouts do not fire."""
    sim.run(max_ticks=sim.tick + ticks, final_check=False)


def test_gets_forwarded_and_grant_returned():
    sim, xg, l2, accel = _build()
    _accel_send(accel, AccelMsg.GetS)
    sim.run()
    assert l2.of_type(MesiMsg.GetS)
    l2.send(MesiMsg.DataE, ADDR, "xg", "response", data=_block(5))
    sim.run()
    grants = accel.of_type(AccelMsg.DataE)
    assert grants and grants[0].data.read_byte(0) == 5
    assert l2.of_type(MesiMsg.UnblockX), "XG must unblock the directory"
    assert xg.mirror_entry(ADDR).accel_state == "O"
    assert len(xg.error_log) == 0


def test_g0a_read_blocked_without_permission():
    sim, xg, l2, accel = _build(default_perm=PagePermission.NONE)
    _accel_send(accel, AccelMsg.GetS)
    sim.run()
    assert not l2.received, "request must not reach the host"
    assert xg.error_log.count(Guarantee.G0A_READ_PERMISSION) == 1


def test_g0b_getm_blocked_on_readonly_page():
    sim, xg, l2, accel = _build(default_perm=PagePermission.READ)
    _accel_send(accel, AccelMsg.GetM)
    sim.run()
    assert not l2.received
    assert xg.error_log.count(Guarantee.G0B_WRITE_PERMISSION) == 1


def test_g0b_full_state_retains_exclusive_grant_on_readonly_page():
    """Full State XG keeps ownership of a read-only block the host granted
    exclusively, giving the accelerator only DataS (Section 2.3.1)."""
    sim, xg, l2, accel = _build(default_perm=PagePermission.READ)
    _accel_send(accel, AccelMsg.GetS)
    sim.run()
    l2.send(MesiMsg.DataE, ADDR, "xg", "response", data=_block(9))
    sim.run()
    assert accel.of_type(AccelMsg.DataS), "accel must never own a read-only block"
    assert not accel.of_type(AccelMsg.DataE)
    entry = xg.mirror_entry(ADDR)
    assert entry.retained_data is not None
    # A later data-needing probe is served from the retained copy.
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    _step(sim)
    # accel (S) was invalidated and acked; XG supplied the data itself
    assert accel.of_type(AccelMsg.Invalidate)
    _accel_send(accel, AccelMsg.InvAck, port="accel_response")
    _step(sim)
    peer = sim.component("l1.peer")
    data_out = peer.of_type(MesiMsg.DataM)
    assert data_out
    assert data_out[0].data.read_byte(0) == 9
    assert len(xg.error_log) == 0, "a correct accelerator must cause no errors"


def test_g1b_second_request_while_pending_reported():
    sim, xg, l2, accel = _build()
    _accel_send(accel, AccelMsg.GetS)
    _accel_send(accel, AccelMsg.GetS)
    sim.run()
    assert xg.error_log.count(Guarantee.G1B_TRANSIENT_REQUEST) == 1
    assert len(l2.of_type(MesiMsg.GetS)) == 1, "only the first reaches the host"


def test_g1a_put_without_block_blocked_full_state():
    sim, xg, l2, accel = _build()
    _accel_send(accel, AccelMsg.PutM, data=_block(1), dirty=True)
    sim.run()
    assert xg.error_log.count(Guarantee.G1A_STABLE_REQUEST) == 1
    assert not l2.of_type(MesiMsg.PutM)


def test_g1a_unchecked_transactional_forwards_to_tolerant_host():
    """Transactional XG cannot check stable state; the Put reaches the
    host, which must tolerate it (Section 2.3.2)."""
    sim, xg, l2, accel = _build(variant=XGVariant.TRANSACTIONAL)
    _accel_send(accel, AccelMsg.PutM, data=_block(1), dirty=True)
    sim.run()
    assert accel.of_type(AccelMsg.WBAck)
    assert l2.of_type(MesiMsg.PutM), "transactional XG forwards; host Nacks"
    l2.send(MesiMsg.WBNack, ADDR, "xg", "forward")
    sim.run()  # XG absorbs the Nack


def test_g2b_response_without_request_reported():
    sim, xg, l2, accel = _build()
    _accel_send(accel, AccelMsg.InvAck, port="accel_response")
    sim.run()
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 1


def test_g2b_request_on_response_channel_reported():
    sim, xg, l2, accel = _build()
    _accel_send(accel, AccelMsg.GetS, port="accel_response")
    sim.run()
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 1
    assert not l2.received


def _grant_ownership(sim, xg, l2, accel, value=7):
    _accel_send(accel, AccelMsg.GetM)
    sim.run()
    l2.send(MesiMsg.DataM, ADDR, "xg", "response", data=_block(value), ack_count=0)
    sim.run()
    assert accel.of_type(AccelMsg.DataM)


def test_g2a_invack_from_owner_corrected_to_zero_writeback():
    """Paper: 'if the accelerator owns a block but responds to an
    Invalidate with an InvAck, Crossing Guard will send a Writeback of a
    zero block instead.'"""
    sim, xg, l2, accel = _build()
    _grant_ownership(sim, xg, l2, accel)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    _step(sim)
    assert accel.of_type(AccelMsg.Invalidate)
    _accel_send(accel, AccelMsg.InvAck, port="accel_response")  # WRONG: it owns it
    _step(sim)
    assert xg.error_log.count(Guarantee.G2A_STABLE_RESPONSE) == 1
    peer = sim.component("l1.peer")
    data_out = peer.of_type(MesiMsg.DataM)
    assert data_out and data_out[0].data.is_zero(), "zero block substituted"


def test_g2a_writeback_from_nonowner_corrected_full_state():
    sim, xg, l2, accel = _build()
    # accel has only S
    _accel_send(accel, AccelMsg.GetS)
    sim.run()
    l2.send(MesiMsg.DataS, ADDR, "xg", "response", data=_block(3))
    sim.run()
    l2.send(MesiMsg.Inv, ADDR, "xg", "forward", requestor="l1.peer")
    _step(sim)
    _accel_send(
        accel, AccelMsg.DirtyWB, port="accel_response", data=_block(66), dirty=True
    )  # WRONG: it is only a sharer
    _step(sim)
    assert xg.error_log.count(Guarantee.G2A_STABLE_RESPONSE) == 1
    peer = sim.component("l1.peer")
    assert peer.of_type(MesiMsg.InvAck), "corrected to the ack the host expects"
    assert not l2.of_type(MesiMsg.CopyBack), "bogus data must be discarded"


def test_g2c_timeout_answers_on_accels_behalf():
    sim, xg, l2, accel = _build(accel_timeout=200)
    _grant_ownership(sim, xg, l2, accel)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    sim.run()  # accel never answers the Invalidate; timeout fires
    assert xg.error_log.count(Guarantee.G2C_TIMEOUT) == 1
    peer = sim.component("l1.peer")
    data_out = peer.of_type(MesiMsg.DataM)
    assert data_out and data_out[0].data.is_zero()


def test_late_response_after_timeout_is_g2b():
    sim, xg, l2, accel = _build(accel_timeout=200)
    _grant_ownership(sim, xg, l2, accel)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    sim.run()
    assert xg.error_log.count(Guarantee.G2C_TIMEOUT) == 1
    _accel_send(accel, AccelMsg.DirtyWB, port="accel_response", data=_block(1), dirty=True)
    sim.run()
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 1
    peer = sim.component("l1.peer")
    assert len(peer.of_type(MesiMsg.DataM)) == 1, "host must not see a second response"


def test_put_vs_invalidate_race_resolved_from_put():
    """The one legal race (Section 2.1): the Put's data answers the probe
    and the trailing InvAck is absorbed without an error."""
    sim, xg, l2, accel = _build()
    _grant_ownership(sim, xg, l2, accel, value=7)
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    _step(sim)
    assert accel.of_type(AccelMsg.Invalidate)
    # The accel's PutM crossed the Invalidate (sent before seeing it)...
    _accel_send(accel, AccelMsg.PutM, data=_block(7), dirty=True)
    # ...and per Table 1 it answers the Invalidate from B with an InvAck.
    _accel_send(accel, AccelMsg.InvAck, port="accel_response")
    _step(sim)
    assert accel.of_type(AccelMsg.WBAck)
    peer = sim.component("l1.peer")
    data_out = peer.of_type(MesiMsg.DataM)
    assert data_out and data_out[0].data.read_byte(0) == 7
    assert len(xg.error_log) == 0
    assert xg.tbes.lookup(ADDR) is None, "probe fully closed"


def test_rate_limiter_throttles_requests():
    from repro.xg.rate_limiter import RateLimiter

    sim, xg, l2, accel = _build()
    xg.rate_limiter = RateLimiter(rate=1, period=1000, burst=1)
    _accel_send(accel, AccelMsg.GetS, addr=0x4000)
    _accel_send(accel, AccelMsg.GetS, addr=0x8000)
    sim.run(max_ticks=500, final_check=False)
    assert len(l2.of_type(MesiMsg.GetS)) == 1
    assert xg.stats.get("rate_limited") >= 1


def test_disabled_accelerator_requests_dropped():
    sim, xg, l2, accel = _build()
    xg.error_log.disable_after = 1
    _accel_send(accel, AccelMsg.InvAck, port="accel_response")  # 1st violation
    sim.run()
    assert xg.error_log.accel_disabled
    _accel_send(accel, AccelMsg.GetS)
    sim.run()
    assert not l2.of_type(MesiMsg.GetS)
    assert xg.stats.get("dropped_disabled") == 1
