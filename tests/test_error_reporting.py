"""Tests for machine-readable error reporting and deadlock forensics.

Covers ``XGError.as_dict`` / ``XGErrorLog.as_dict``, the CLI-facing
``format_error_log`` table, and ``DeadlockError.diagnose`` against a
synthetic stuck component.
"""

import pytest

from repro.eval.report import format_error_log
from repro.sim.component import Component
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import DeadlockError, Simulator
from repro.xg.errors import Guarantee, XGErrorLog
from repro.xg.interface import AccelMsg

from tests.helpers import RawAgent


def _filled_log(disable_after=None):
    log = XGErrorLog(disable_after=disable_after)
    log.report(10, Guarantee.G0A_READ_PERMISSION, 0x1000, "GetS without read permission",
               accel="adversary")
    log.report(25, Guarantee.G2C_TIMEOUT, 0x2000, "no answer in time", accel="adversary")
    return log


def test_xg_error_as_dict_round_trips_fields():
    log = _filled_log()
    record = log.errors[0].as_dict()
    assert record == {
        "tick": 10,
        "guarantee": "G0A_READ_PERMISSION",
        "addr": 0x1000,
        "description": "GetS without read permission",
        "accel": "adversary",
    }


def test_error_log_as_dict_summary_and_records():
    log = _filled_log(disable_after=2)
    report = log.as_dict()
    assert report["count"] == 2
    assert report["accel_disabled"] is True
    assert report["disable_after"] == 2
    assert report["by_guarantee"] == {"G0A_READ_PERMISSION": 1, "G2C_TIMEOUT": 1}
    assert [r["tick"] for r in report["errors"]] == [10, 25]


def test_format_error_log_renders_table():
    text = format_error_log(_filled_log())
    assert "OS error log: 2 records, accel_disabled=False" in text
    assert "G2C_TIMEOUT" in text
    assert "0x1000" in text
    assert "adversary" in text


def test_format_error_log_truncates_to_newest():
    log = XGErrorLog()
    for i in range(30):
        log.report(i, Guarantee.G1A_STABLE_REQUEST, 0x40 * i, f"violation {i}")
    text = format_error_log(log, limit=5)
    assert "showing last 5" in text
    assert "violation 29" in text
    assert "violation 24" not in text


# -- DeadlockError.diagnose --------------------------------------------------------


class _StuckComponent(Component):
    """Accepts deliveries and never processes them."""

    PORTS = ("request",)

    def wakeup(self):
        pass  # the point: pending work is never consumed


def test_diagnose_names_culprit_queues_and_trace():
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), name="host")
    stuck = _StuckComponent(sim, "stuck")
    net.attach(stuck)
    src = RawAgent(sim, "src", net)
    src.send(AccelMsg.GetS, 0x7000, "stuck", "request")
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    report = excinfo.value.diagnose()
    assert "stuck has work pending" in report
    assert "-- components with pending work --" in report
    assert "<-- watchdog tripped here" in report
    assert "queues={'request': 1}" in report
    assert "-- last 1 network messages" in report
    assert "GetS 0x7000 src->stuck" in report


def test_diagnose_without_simulator_degrades_gracefully():
    class _Fake:
        name = "ghost"

    error = DeadlockError(_Fake(), 5, 100)
    assert "diagnosis unavailable" in error.diagnose()
