"""Directed unit tests for MesifCrossingGuard."""

import pytest

from repro.memory.datablock import DataBlock
from repro.protocols.mesif.messages import MesifMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.errors import Guarantee
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.mesif_xg import MesifCrossingGuard
from repro.xg.permissions import PagePermission, PermissionTable

from tests.helpers import RawAgent

ADDR = 0x4000


def _build(variant=XGVariant.FULL_STATE, default_perm=PagePermission.READ_WRITE):
    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = MesifCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        variant=variant,
        permissions=PermissionTable(default=default_perm),
        accel_timeout=100_000,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    RawAgent(sim, "l1.peer", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, l2, accel


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _go(sim, ticks=100):
    sim.run(max_ticks=sim.tick + ticks, final_check=False)


def test_dataf_grant_becomes_datas_with_unblockf():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "xg", "response", data=_block(4))
    _go(sim)
    grants = accel.of_type(AccelMsg.DataS)
    assert grants and grants[0].data.read_byte(0) == 4
    assert not accel.of_type(AccelMsg.DataE)
    assert l2.of_type(MesifMsg.UnblockF), "XG takes the designation hostward"
    assert xg.mirror_entry(ADDR).accel_state == "S"


def test_fwd_gets_f_declined_with_fnack():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "xg", "response", data=_block())
    _go(sim)
    before = len(accel.received)
    l2.send(MesifMsg.Fwd_GetS_F, ADDR, "xg", "forward", requestor="l1.peer")
    _go(sim)
    assert l2.of_type(MesifMsg.FNack)
    assert len(accel.received) == before, "accelerator never consulted"
    # the accel's S copy is untouched in the mirror
    assert xg.mirror_entry(ADDR).accel_state == "S"


def test_datae_grant_passes_through_exclusive():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataE, ADDR, "xg", "response", data=_block(6))
    _go(sim)
    assert accel.of_type(AccelMsg.DataE)
    assert l2.of_type(MesifMsg.UnblockX)
    assert xg.mirror_entry(ADDR).accel_state == "O"


def test_getm_ack_counting():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataM, ADDR, "xg", "response", data=_block(), ack_count=1)
    _go(sim)
    assert not accel.of_type(AccelMsg.DataM)
    peer = sim.component("l1.peer")
    peer.send(MesifMsg.InvAck, ADDR, "xg", "response")
    _go(sim)
    assert accel.of_type(AccelMsg.DataM)


def test_accel_puts_has_no_host_message():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataS, ADDR, "xg", "response", data=_block())
    _go(sim)
    host_msgs_before = xg.stats.get("xg_to_host_msgs")
    accel.send(AccelMsg.PutS, ADDR, "xg", "accel_request")
    _go(sim)
    assert accel.of_type(AccelMsg.WBAck)
    assert xg.stats.get("xg_to_host_msgs") == host_msgs_before
    assert xg.stats.get("puts_absorbed_no_host_message") == 1
    assert xg.tbes.lookup(ADDR) is None


def test_owner_probe_roundtrip_with_dataf_to_requestor():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataM, ADDR, "xg", "response", data=_block(), ack_count=0)
    _go(sim)
    l2.send(MesifMsg.Fwd_GetS, ADDR, "xg", "forward", requestor="l1.peer")
    _go(sim)
    assert accel.of_type(AccelMsg.Invalidate)
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response", data=_block(8), dirty=True)
    _go(sim)
    peer = sim.component("l1.peer")
    served = peer.of_type(MesifMsg.DataF)
    assert served and served[0].data.read_byte(0) == 8
    copyback = l2.of_type(MesifMsg.CopyBack)
    assert copyback and copyback[0].dirty


def test_transactional_gets_only_on_readonly_page():
    sim, xg, l2, accel = _build(
        variant=XGVariant.TRANSACTIONAL, default_perm=PagePermission.READ
    )
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    assert l2.of_type(MesifMsg.GetS_Only)


def test_g2a_zero_writeback_on_mesif():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataM, ADDR, "xg", "response", data=_block(), ack_count=0)
    _go(sim)
    l2.send(MesifMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    _go(sim)
    accel.send(AccelMsg.InvAck, ADDR, "xg", "accel_response")  # WRONG: owner
    _go(sim)
    assert xg.error_log.count(Guarantee.G2A_STABLE_RESPONSE) == 1
    peer = sim.component("l1.peer")
    data_out = peer.of_type(MesifMsg.DataM)
    assert data_out and data_out[0].data.is_zero()


def test_put_invalidate_race_on_mesif():
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    l2.send(MesifMsg.DataM, ADDR, "xg", "response", data=_block(), ack_count=0)
    _go(sim)
    l2.send(MesifMsg.Recall, ADDR, "xg", "forward")
    _go(sim)
    accel.send(AccelMsg.PutM, ADDR, "xg", "accel_request", data=_block(5), dirty=True)
    accel.send(AccelMsg.InvAck, ADDR, "xg", "accel_response")
    _go(sim)
    assert accel.of_type(AccelMsg.WBAck)
    back = l2.of_type(MesifMsg.CopyBackInv)
    assert back and back[0].data.read_byte(0) == 5
    assert len(xg.error_log) == 0
    assert xg.tbes.lookup(ADDR) is None
