"""Campaign executor: parallel-vs-serial equivalence and error capture.

The claims under test are the ones every parallel campaign rests on:

* any ``workers`` count produces byte-identical merged output (results
  come back in submission order, not completion order);
* a worker-side escape — including a forced ``DeadlockError`` — comes
  back as a failed :class:`CampaignOutcome` carrying forensics, and
  never hangs or poisons the pool.

All runners here are module-level so the job specs stay picklable.
"""

import dataclasses
import json

from repro.eval.campaign import (
    CampaignJob,
    merge_failure_into,
    resolve_workers,
    run_campaign,
)
from repro.eval.experiments import run_stress_coverage
from repro.host.config import HostProtocol
from repro.sim.component import Component
from repro.sim.message import Message
from repro.sim.simulator import Simulator
from repro.testing.chaos import run_chaos_matrix
from repro.xg.interface import XGVariant


def _square(x):
    return x * x


def _boom(msg):
    raise ValueError(msg)


class _Lazy(Component):
    PORTS = ("inbox",)

    def wakeup(self):
        pass  # never consumes: guaranteed final-check deadlock


def _wedge(trace_depth):
    """Deliberately deadlock a tiny simulator (message never consumed)."""
    sim = Simulator(trace_depth=trace_depth)
    lazy = _Lazy(sim, "lazy")
    lazy.deliver("inbox", 1, Message("m", 0, dest="lazy"))
    sim.run()


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) == 1
    assert resolve_workers(-2) == 1
    assert resolve_workers(None) >= 1


def test_outcomes_in_submission_order_serial_and_parallel():
    jobs = [CampaignJob(runner=_square, args=(i,), label=f"j{i}") for i in range(7)]
    serial = run_campaign(jobs, workers=1)
    parallel = run_campaign(jobs, workers=3)
    assert [o.value for o in serial] == [i * i for i in range(7)]
    assert serial == parallel
    assert [o.index for o in parallel] == list(range(7))
    assert all(o.ok for o in parallel)


def test_worker_exception_captured_not_raised():
    jobs = [
        CampaignJob(runner=_square, args=(2,), label="ok"),
        CampaignJob(runner=_boom, args=("kaput",), label="bad"),
        CampaignJob(runner=_square, args=(3,), label="after"),
    ]
    for workers in (1, 2):
        outcomes = run_campaign(jobs, workers=workers)
        assert [o.ok for o in outcomes] == [True, False, True], workers
        bad = outcomes[1]
        assert bad.error_type == "ValueError"
        assert bad.error == "kaput"
        assert "ValueError" in bad.traceback
        assert not bad.deadlocked
        # the pool survived: the job after the failure still ran
        assert outcomes[2].value == 9


def test_forced_deadlock_surfaces_diagnosis():
    jobs = [CampaignJob(runner=_wedge, args=(depth,), label=f"d{depth}")
            for depth in (64, 0)]
    for workers in (1, 2):
        outcomes = run_campaign(jobs, workers=workers)
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.deadlocked
            assert outcome.error_type == "DeadlockError"
            assert outcome.diagnosis, "diagnose() text must cross the pipe"
            assert "components with pending work" in outcome.diagnosis
    # trace_depth=0 workers still produce a (degraded) diagnosis
    assert "trace disabled" in outcomes[1].diagnosis


def test_merge_failure_into_keeps_row_rectangular():
    outcome = run_campaign(
        [CampaignJob(runner=_boom, args=("x",), label="only")], workers=1
    )[0]
    row = merge_failure_into({"config": "c", "seed": 4, "passed": True}, outcome)
    assert row["config"] == "c" and row["seed"] == 4
    assert row["passed"] is False
    assert row["host_safe"] is False
    assert row["host_crashed"] is True and row["host_deadlocked"] is False
    assert row["crash_detail"] == "ValueError: x"
    assert row["detail"] == row["crash_detail"]


def test_stress_coverage_parallel_byte_identical_to_serial():
    kwargs = dict(seeds=range(1), ops_per_run=200, num_blocks=3)
    serial = run_stress_coverage(workers=1, **kwargs)
    parallel = run_stress_coverage(workers=2, **kwargs)
    assert serial["runs"] == parallel["runs"]
    assert serial["coverage"] == parallel["coverage"]
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    assert all(r["passed"] for r in serial["runs"])


def test_chaos_matrix_parallel_identical_to_serial():
    kwargs = dict(
        fault_kinds=("drop", "duplicate"),
        rate=0.1,
        hosts=(HostProtocol.MESI,),
        variants=(XGVariant.FULL_STATE,),
        seeds=range(1),
        duration=6_000,
        cpu_ops=100,
    )
    serial = run_chaos_matrix(workers=1, **kwargs)
    parallel = run_chaos_matrix(workers=2, **kwargs)
    assert len(serial) == 3  # drop, duplicate, mixed
    assert serial == parallel


def test_campaign_job_spec_is_picklable():
    import pickle

    job = CampaignJob(runner=_square, args=(5,), kwargs={}, label="p")
    clone = pickle.loads(pickle.dumps(job))
    assert clone.runner(*clone.args) == 25
    assert dataclasses.asdict(clone)["label"] == "p"
