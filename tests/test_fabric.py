"""Campaign telemetry fabric: sketches, emitter, collector, equivalence.

The claims under test are the fabric's hard requirements:

* sketch/series folds are **byte-identical regardless of merge order**;
* the emitter never blocks the hot path — a full queue drops the frame
  and counts the drop;
* fabric-on campaigns produce byte-identical merged results to
  fabric-off at every worker count;
* a failed job ships a non-empty flight-recorder payload in
  ``CampaignOutcome.forensics`` across a real process boundary;
* a worker killed mid-job comes back as a ``WorkerLost`` outcome and a
  stale heartbeat marks its shard lost — the campaign never hangs.

All runners are module-level so the job specs stay picklable.
"""

import io
import json
import os
import pickle
import queue
import random
import signal

import pytest

from repro.eval.campaign import CampaignJob, merge_failure_into, run_campaign
from repro.eval.experiments import run_stress_coverage
from repro.eval.report import (
    build_campaign_dashboard,
    format_fabric_summary,
    write_campaign_dashboard,
)
from repro.obs.fabric import (
    DEFAULT_CONFIG,
    FabricCollector,
    FabricEmitter,
    LiveRenderer,
    current_fabric,
    inproc_session,
    live_fabric,
    use_fabric,
    worker_emitter,
)
from repro.obs.recorder import FlightRecorder, format_trace_record
from repro.obs.sketch import CounterSeries, LatencySketch
from repro.sim.component import Component
from repro.sim.message import Message
from repro.sim.simulator import Simulator, progress_hook, set_progress_hook


# -- sketches -------------------------------------------------------------------


def test_latency_sketch_observe_and_stats():
    sketch = LatencySketch(bucket_width=10)
    for value in (5, 15, 25, 95):
        sketch.observe(value)
    assert sketch.count == 4
    assert sketch.total == 140
    assert sketch.min == 5 and sketch.max == 95
    assert sketch.mean == 35.0
    assert sketch.buckets == {0: 1, 1: 1, 2: 1, 9: 1}
    assert 0 < sketch.percentile(0.5) <= 95
    assert sketch.percentile(1.0) == 95


def test_latency_sketch_merge_is_order_free_byte_identical():
    rng = random.Random(7)
    samples = [rng.randrange(0, 500) for _ in range(200)]
    parts = []
    for chunk_start in range(0, 200, 50):
        part = LatencySketch(bucket_width=8)
        for value in samples[chunk_start:chunk_start + 50]:
            part.observe(value)
        parts.append(part)

    forward = LatencySketch(bucket_width=8)
    for part in parts:
        forward.merge(part)
    backward = LatencySketch(bucket_width=8)
    for part in reversed(parts):
        backward.merge(part)
    assert forward.canonical() == backward.canonical()
    assert forward == backward

    whole = LatencySketch(bucket_width=8)
    for value in samples:
        whole.observe(value)
    assert forward.canonical() == whole.canonical()


def test_latency_sketch_width_mismatch_raises():
    with pytest.raises(ValueError, match="width mismatch"):
        LatencySketch(bucket_width=8).merge(LatencySketch(bucket_width=4))
    with pytest.raises(ValueError):
        LatencySketch(bucket_width=0)


def test_latency_sketch_dict_roundtrip_through_json():
    sketch = LatencySketch(bucket_width=5)
    for value in (1, 9, 42):
        sketch.observe(value)
    wire = json.loads(json.dumps(sketch.as_dict()))
    clone = LatencySketch.from_dict(wire)
    assert clone == sketch
    assert clone.buckets == sketch.buckets  # int keys restored


def test_latency_sketch_from_histogram_is_exact():
    from repro.sim.stats import Histogram

    hist = Histogram(8)
    for value in (3, 11, 200):
        hist.observe(value)
    sketch = LatencySketch.from_histogram(hist)
    assert sketch.count == hist.count
    assert sketch.total == hist.total
    assert sketch.buckets == dict(hist.buckets)


def test_counter_series_records_deltas_and_skips_zero():
    series = CounterSeries(bucket_ticks=100)
    series.record(50, "events", 10)
    series.record(150, "events", 5)
    series.record(170, "events", 0)  # zero deltas don't allocate
    series.record(170, "coverage", 2)
    assert series.series == {"events": {0: 10, 1: 5}, "coverage": {1: 2}}
    assert series.total("events") == 15
    assert series.total("missing") == 0


def test_counter_series_merge_order_free_and_mismatch_raises():
    def build(entries):
        series = CounterSeries(bucket_ticks=100)
        for tick, name, delta in entries:
            series.record(tick, name, delta)
        return series

    a = build([(10, "x", 3), (120, "y", 1)])
    b = build([(30, "x", 4), (350, "x", 2)])
    ab = build([]).merge(a).merge(b)
    ba = build([]).merge(b).merge(a)
    assert ab.canonical() == ba.canonical()
    assert ab.total("x") == 9

    clone = CounterSeries.from_dict(json.loads(json.dumps(ab.as_dict())))
    assert clone == ab
    with pytest.raises(ValueError, match="bucket mismatch"):
        a.merge(CounterSeries(bucket_ticks=50))


# -- flight recorder -----------------------------------------------------------


class _Lazy(Component):
    PORTS = ("inbox",)

    def wakeup(self):
        pass  # never consumes: guaranteed final-check deadlock


def test_flight_recorder_ring_is_bounded():
    recorder = FlightRecorder(frame_capacity=4, tail=2)
    for index in range(10):
        recorder.record_frame({"kind": "progress", "n": index})
    assert len(recorder) == 4
    assert recorder.frames_seen == 10
    snap = recorder.snapshot(error="boom")
    assert snap["error"] == "boom"
    assert [f["n"] for f in snap["frames"]] == [6, 7, 8, 9]
    assert snap["frames_seen"] == 10


def test_flight_recorder_snapshot_with_sim_tail_and_pickle():
    from repro.obs import Telemetry

    sim = Simulator(trace_depth=16)
    Telemetry(sim)
    lazy = _Lazy(sim, "lazy")
    msg = Message("m", 0x40, dest="lazy", sender="cpu")
    lazy.deliver("inbox", 1, msg)
    sim.record_trace("accel", msg, note="probe")
    sim.obs.record_transition(1, "lazy", "test", "I", "Load")
    sim.run(final_check=False)

    recorder = FlightRecorder(frame_capacity=8, tail=4)
    recorder.record_frame({"kind": "heartbeat"})
    snap = recorder.snapshot(sim=sim, error="wedged")
    assert snap["tick"] == sim.tick
    assert snap["trace"], "trace tail must be captured"
    assert all(isinstance(line, str) for line in snap["trace"])
    assert snap["transitions"] == ["t=1 lazy [test]: I/Load"]
    clone = pickle.loads(pickle.dumps(snap))
    assert clone == snap


def test_flight_recorder_notes_disabled_trace():
    sim = Simulator(trace_depth=0)
    snap = FlightRecorder().snapshot(sim=sim)
    assert snap["trace"] == []
    assert "trace_note" in snap


def test_format_trace_record():
    line = format_trace_record((7, "accel", "GetM", 0x80, "a", "b", "dup"))
    assert line == "t=7 accel: GetM 0x80 a->b [dup]"


# -- emitter -------------------------------------------------------------------


def test_emitter_drops_on_full_queue_never_raises():
    sink = queue.Queue(maxsize=2)
    emitter = FabricEmitter(sink.put_nowait, worker_id=9)
    emitter.job_started(0, "a")
    emitter.job_finished(0, "a", ok=True)
    assert emitter.frames_sent == 2 and emitter.dropped == 0
    emitter.job_started(1, "b")  # queue full: dropped, not raised
    emitter.job_started(2, "c")
    assert emitter.dropped == 2
    assert emitter.recorder.frames_seen == 4  # ring still saw everything
    sink.get_nowait()
    emitter.job_finished(2, "c", ok=True)
    frame = sink.queue[-1]
    assert frame["dropped"] == 2, "drop count rides the next frame through"


def test_emitter_job_finished_frame_carries_sketches_and_series():
    frames = []
    emitter = FabricEmitter(frames.append, worker_id=1,
                            config={"min_emit_interval": 0.0})
    emitter.job_started(0, "job")

    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    emitter.on_progress(sim, final=True)
    emitter.job_finished(0, "job", ok=True)

    done = frames[-1]
    assert done["kind"] == "job_finished" and done["ok"] is True
    assert done["events_fired"] == sim._events_fired
    assert "job_ms" in done["sketches"]
    assert LatencySketch.from_dict(done["sketches"]["job_ms"]).count == 1
    series = CounterSeries.from_dict(done["series"])
    assert series.total("events_fired") == sim._events_fired
    # cumulative payloads reset between jobs: contributions stay disjoint
    emitter.job_started(1, "job2")
    emitter.job_finished(1, "job2", ok=True)
    assert LatencySketch.from_dict(
        frames[-1]["sketches"]["job_ms"]).count == 1


def test_emitter_failure_forensics_carries_flight_recorder():
    emitter = FabricEmitter(lambda frame: None, worker_id=1)
    emitter.job_started(0, "x")
    payload = emitter.failure_forensics(
        invariant={"kind": "inclusion"}, exc=ValueError("bad")
    )
    assert payload["invariant"] == {"kind": "inclusion"}
    recorder = payload["flight_recorder"]
    assert recorder["error"] == "bad"
    assert recorder["frames"], "recent frames ride along"


# -- collector -----------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_collector_aggregates_frames_and_detects_stale_worker():
    clock = _FakeClock()
    collector = FabricCollector(stall_after=5.0, clock=clock)
    collector.jobs_total = 2
    collector.handle({"kind": "job_started", "worker": 1, "job": 0,
                      "label": "a", "dropped": 0})
    collector.handle({"kind": "job_started", "worker": 2, "job": 1,
                      "label": "b", "dropped": 0})
    collector.handle({"kind": "progress", "worker": 1, "job": 0, "label": "a",
                      "tick": 500, "events_fired": 100,
                      "events_per_sec": 50.0, "dropped": 0})
    clock.now = 2.0
    collector.handle({
        "kind": "job_finished", "worker": 1, "job": 0, "label": "a",
        "ok": True, "error_type": "", "seconds": 2.0, "jobs_done": 1,
        "events_fired": 100, "final_tick": 900, "coverage_visited": 7,
        "sketches": {"job_ms": LatencySketch(50).as_dict()},
        "series": CounterSeries(5000).as_dict(), "dropped": 3,
    })
    snap = collector.snapshot()
    assert snap["jobs_done"] == 1 and snap["jobs_running"] == 1
    assert snap["coverage_visited"] == 7
    assert snap["frames_dropped"] == 3
    assert not any(w["stalled"] for w in snap["workers"])

    # both workers are now past the stall threshold; only worker 2 still
    # had a running shard, so exactly one job is marked lost
    clock.now = 9.0
    assert 2 in collector.mark_stale()
    snap = collector.snapshot()
    stalled = {w["id"]: w["stalled"] for w in snap["workers"]}
    assert stalled[2] is True
    assert collector.jobs[1]["status"] == "lost"
    assert snap["jobs_lost"] == 1 and snap["jobs_running"] == 0
    forensics = collector.lost_forensics(1)
    assert forensics["flight_recorder"]["job"]["status"] == "lost"


def test_collector_job_lost_is_idempotent_and_skips_finished():
    collector = FabricCollector(clock=_FakeClock())
    collector.handle({"kind": "job_started", "worker": 1, "job": 0,
                      "label": "a", "dropped": 0})
    collector.job_lost(0, "a", error="gone")
    collector.job_lost(0, "a", error="gone again")
    assert collector.jobs_lost == 1
    collector.handle({
        "kind": "job_finished", "worker": 1, "job": 5, "label": "z",
        "ok": True, "error_type": "", "seconds": 0.1, "jobs_done": 2,
        "dropped": 0,
    })
    collector.job_lost(5, "z")
    assert collector.jobs_lost == 1, "a finished job can't be lost"


def test_collector_begin_twice_raises_and_finish_idempotent():
    collector = FabricCollector()
    collector.begin(1, multiprocess=False)
    with pytest.raises(RuntimeError, match="begin without finish"):
        collector.begin(1, multiprocess=False)
    collector.finish()
    collector.finish()  # no-op
    collector.begin(1, multiprocess=False)
    collector.finish()


# -- ambient context / in-process session ---------------------------------------


def test_use_fabric_installs_and_restores():
    collector = FabricCollector()
    assert current_fabric() is None
    with use_fabric(collector):
        assert current_fabric() is collector
    assert current_fabric() is None


def test_inproc_session_installs_hook_and_restores():
    collector = FabricCollector()
    assert worker_emitter() is None and progress_hook() is None
    with inproc_session(collector, label="one"):
        assert worker_emitter() is not None
        assert progress_hook() is not None
        sim = Simulator()
        assert len(sim.monitors) == 1, "new sims get the progress monitor"
        sim.schedule(1, lambda: None)
        sim.run()
    assert worker_emitter() is None and progress_hook() is None
    assert Simulator().monitors == []
    summary = collector.summary()
    assert summary["jobs_done"] == 1
    assert "job_ms" in summary["sketches"]


# -- campaign equivalence (the hard requirement) --------------------------------


def _stress_kwargs():
    return dict(seeds=range(1), ops_per_run=200, num_blocks=3)


def test_fabric_on_campaign_byte_identical_serial():
    baseline = run_stress_coverage(workers=1, **_stress_kwargs())
    collector = FabricCollector()
    with use_fabric(collector):
        fabric_on = run_stress_coverage(workers=1, **_stress_kwargs())
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        fabric_on, sort_keys=True)
    assert collector.summary()["jobs_done"] == len(baseline["runs"])


def test_fabric_on_campaign_byte_identical_parallel():
    baseline = run_stress_coverage(workers=1, **_stress_kwargs())
    collector = FabricCollector()
    fabric_on = None
    with use_fabric(collector):
        fabric_on = run_stress_coverage(workers=4, **_stress_kwargs())
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        fabric_on, sort_keys=True)
    summary = collector.summary()
    assert summary["jobs_done"] == len(baseline["runs"])
    assert summary["jobs_lost"] == 0
    assert summary["frames_seen"] >= 2 * len(baseline["runs"])


def test_fabric_on_telemetry_matrix_identical():
    kwargs = dict(seeds=range(1), ops_per_run=200, num_blocks=3,
                  telemetry=True)
    baseline = run_stress_coverage(workers=1, **kwargs)
    with use_fabric(FabricCollector()):
        fabric_on = run_stress_coverage(workers=2, **kwargs)
    from repro.obs import render_matrix

    assert render_matrix(baseline["matrix"]) == render_matrix(
        fabric_on["matrix"])
    assert baseline["runs"] == fabric_on["runs"]


# -- failure forensics across the process boundary ------------------------------


def _wedge(trace_depth):
    """Deliberately deadlock a tiny simulator (message never consumed)."""
    sim = Simulator(trace_depth=trace_depth)
    lazy = _Lazy(sim, "lazy")
    lazy.deliver("inbox", 1, Message("m", 0, dest="lazy"))
    sim.run()


def _boom(msg):
    raise ValueError(msg)


def test_failed_job_ships_flight_recorder_across_pool():
    jobs = [
        CampaignJob(runner=_wedge, args=(16,), label="wedge"),
        CampaignJob(runner=_boom, args=("kaput",), label="boom"),
    ]
    for workers in (1, 2):
        collector = FabricCollector()
        outcomes = run_campaign(jobs, workers=workers, fabric=collector)
        wedge, boom = outcomes
        assert not wedge.ok and wedge.deadlocked
        recorder = wedge.forensics["flight_recorder"]
        assert recorder["frames"], "job_started frame must be recorded"
        assert recorder["error"], "DeadlockError text rides along"
        assert not boom.ok
        assert boom.forensics["flight_recorder"]["error"] == "kaput"
        # the payload crossed a real pipe when workers > 1; either way it
        # must survive another pickle round-trip
        assert pickle.loads(pickle.dumps(wedge.forensics)) == wedge.forensics
        assert collector.summary()["jobs_failed"] == 2


def test_merge_failure_into_ignores_forensics():
    collector = FabricCollector()
    outcome = run_campaign(
        [CampaignJob(runner=_boom, args=("x",), label="only")],
        workers=1, fabric=collector,
    )[0]
    assert outcome.forensics is not None
    row = merge_failure_into({"config": "c", "seed": 4}, outcome)
    assert row["crash_detail"] == "ValueError: x"
    assert "forensics" not in row, "merged rows stay fabric-independent"


def _die(code):
    os.kill(os.getpid(), signal.SIGKILL)


def _square(x):
    return x * x


def test_worker_killed_mid_job_yields_lost_shard_not_hang():
    jobs = [
        CampaignJob(runner=_square, args=(2,), label="ok"),
        CampaignJob(runner=_die, args=(0,), label="victim"),
        CampaignJob(runner=_square, args=(3,), label="after"),
    ]
    collector = FabricCollector()
    outcomes = run_campaign(jobs, workers=2, fabric=collector)
    assert len(outcomes) == 3
    lost = [o for o in outcomes if o.error_type == "WorkerLost"]
    assert lost, "the killed worker's shard must surface as WorkerLost"
    for outcome in lost:
        assert not outcome.ok
        assert outcome.forensics["flight_recorder"]["error"]
    assert collector.summary()["jobs_lost"] >= 1


# -- renderer -------------------------------------------------------------------


def _snapshot(**overrides):
    snap = {
        "jobs_total": 4, "jobs_done": 2, "jobs_failed": 1, "jobs_lost": 1,
        "jobs_running": 1, "coverage_visited": 42, "frames_seen": 10,
        "frames_dropped": 2, "elapsed": 3.5, "events_per_sec": 1500.0,
        "workers": [
            {"id": 1, "label": "mesi/seed0", "events_per_sec": 1500.0,
             "tick": 900, "jobs_done": 2, "heartbeat_age": 0.4,
             "dropped": 0, "stalled": False},
            {"id": 2, "label": "", "events_per_sec": 0.0, "tick": 0,
             "jobs_done": 0, "heartbeat_age": 11.0, "dropped": 2,
             "stalled": True},
        ],
    }
    snap.update(overrides)
    return snap


def test_renderer_plain_mode_appends_lines():
    stream = io.StringIO()
    renderer = LiveRenderer(stream=stream, interval=0.1, mode="plain")
    renderer.render(_snapshot())
    renderer.render(_snapshot(jobs_done=3))
    renderer.close()
    out = stream.getvalue()
    assert "\x1b[" not in out, "plain mode never emits ANSI"
    lines = out.strip().splitlines()
    assert len(lines) == 2
    assert "jobs 2/4" in lines[0] and "jobs 3/4" in lines[1]
    assert "1 failed" in lines[0] and "1 LOST" in lines[0]
    assert "(1 stalled)" in lines[0]
    assert "2 frames dropped" in lines[0]


def test_renderer_tty_mode_redraws_in_place():
    stream = io.StringIO()
    renderer = LiveRenderer(stream=stream, interval=0.1, mode="tty")
    renderer.render(_snapshot())
    renderer.render(_snapshot(jobs_done=3))
    renderer.close()
    out = stream.getvalue()
    assert "\x1b[3F\x1b[J" in out, "second render rewinds the drawn block"
    assert "STALLED" in out
    assert "mesi/seed0" in out


def test_renderer_auto_detects_non_tty_as_plain():
    renderer = LiveRenderer(stream=io.StringIO(), interval=1.0)
    assert renderer.mode == "plain"

    class _Tty(io.StringIO):
        def isatty(self):
            return True

    assert LiveRenderer(stream=_Tty(), interval=1.0).mode == "tty"
    with pytest.raises(ValueError, match="unknown renderer mode"):
        LiveRenderer(stream=io.StringIO(), mode="fancy")


def test_live_fabric_off_is_a_noop():
    with live_fabric(live=False) as fabric:
        assert fabric is None
    assert current_fabric() is None


def test_live_fabric_renders_final_snapshot():
    stream = io.StringIO()
    with live_fabric(live=True, interval=5.0, stream=stream,
                     force_mode="plain") as fabric:
        assert current_fabric() is fabric
        run_campaign(
            [CampaignJob(runner=_square, args=(4,), label="sq")], workers=1
        )
    assert "jobs 1/1" in stream.getvalue(), "finish() renders a final line"


# -- report / dashboard ---------------------------------------------------------


def _collector_with_traffic():
    collector = FabricCollector(clock=_FakeClock())
    collector.jobs_total = 1
    collector.handle({"kind": "job_started", "worker": 3, "job": 0,
                      "label": "a", "dropped": 0})
    sketch = LatencySketch(50)
    sketch.observe(120)
    collector.handle({
        "kind": "job_finished", "worker": 3, "job": 0, "label": "a",
        "ok": True, "error_type": "", "seconds": 0.12, "jobs_done": 1,
        "events_fired": 10, "final_tick": 20, "coverage_visited": 5,
        "sketches": {"job_ms": sketch.as_dict()},
        "series": CounterSeries(5000).as_dict(), "dropped": 0,
    })
    return collector


def test_format_fabric_summary_shows_workers_and_sketches():
    text = format_fabric_summary(_collector_with_traffic().summary())
    assert "jobs: 1/1 done" in text
    assert "w3" in text
    assert "job_ms" in text
    assert "p99" in text


def test_campaign_dashboard_folds_bench_history(tmp_path):
    bench = tmp_path / "BENCH_engine.json"
    bench.write_text(json.dumps({"bench": "engine", "events_per_sec": 123}))
    (tmp_path / "BENCH_bad.json").write_text("{nope")
    summary = _collector_with_traffic().summary()
    payload = build_campaign_dashboard(summary, bench_dir=str(tmp_path))
    assert payload["schema"] == "repro.campaign_dash/1"
    assert payload["bench"]["BENCH_engine"]["events_per_sec"] == 123
    assert "error" in payload["bench"]["BENCH_bad"]
    out = tmp_path / "campaign_dash.json"
    write_campaign_dashboard(str(out), summary, bench_dir=str(tmp_path))
    loaded = json.loads(out.read_text())
    assert loaded["fabric"]["jobs_done"] == 1


# -- progress monitor digest-neutrality ----------------------------------------


def test_progress_hook_does_not_change_golden_digests():
    from repro.host.config import HostProtocol
    from repro.testing.golden import golden_run

    baseline = golden_run("stress", HostProtocol.MESI, seed=3, ops=120)
    collector = FabricCollector()
    with inproc_session(collector, label="golden"):
        hooked = golden_run("stress", HostProtocol.MESI, seed=3, ops=120)
    assert baseline == hooked, (
        "attaching the fabric progress monitor must not perturb runs"
    )
    assert set_progress_hook is not None  # hook API stays importable
