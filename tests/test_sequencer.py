"""Unit tests for the CPU/accelerator sequencer."""

import pytest

from repro.host.cpu import Sequencer
from repro.memory.datablock import DataBlock
from repro.protocols.common import CpuOp
from repro.sim.component import Component
from repro.sim.simulator import Simulator


class _EchoCache(Component):
    """Completes every op after a fixed delay with a canned block."""

    PORTS = ("mandatory",)

    def __init__(self, sim, name, delay=5):
        super().__init__(sim, name)
        self.delay = delay
        self.sequencers = {}

    def attach_sequencer(self, sequencer):
        self.sequencers[sequencer.name] = sequencer

    def wakeup(self):
        while True:
            msg = self.in_ports["mandatory"].pop(self.sim.tick)
            if msg is None:
                return
            data = DataBlock()
            if msg.mtype is CpuOp.Store:
                data.write_byte(msg.addr % 64, msg.value)
            self.sim.schedule(
                self.delay, self.sequencers[msg.sender].request_done, msg, data
            )


def _build(delay=5, **kw):
    sim = Simulator()
    cache = _EchoCache(sim, "cache", delay=delay)
    seq = Sequencer(sim, "seq", **kw)
    seq.attach(cache)
    return sim, seq


def test_load_completion_callback():
    sim, seq = _build()
    results = []
    seq.load(0x1003, lambda msg, data: results.append(msg.addr))
    sim.run()
    assert results == [0x1003]
    assert seq.drained()


def test_store_value_passed_through():
    sim, seq = _build()
    seen = []
    seq.store(0x1002, 77, lambda msg, data: seen.append(data.read_byte(2)))
    sim.run()
    assert seen == [77]


def test_latency_recorded():
    sim, seq = _build(delay=9)
    seq.load(0x0)
    sim.run()
    hist = seq.stats.histogram("op_latency")
    assert hist.count == 1
    assert hist.min == 10  # issue_latency 1 + delay 9


def test_response_latency_adds_to_completion():
    sim, seq = _build(delay=9, response_latency=20)
    done_at = []
    seq.load(0x0, lambda m, d: done_at.append(sim.tick))
    sim.run()
    assert done_at == [30]


def test_max_outstanding_enforced():
    sim, seq = _build(max_outstanding=2)
    seq.load(0x0)
    seq.load(0x40)
    assert not seq.can_issue()
    with pytest.raises(RuntimeError):
        seq.load(0x80)
    sim.run()
    assert seq.can_issue()


def test_outstanding_ops_count_for_watchdog():
    sim, seq = _build()
    assert seq.oldest_pending_tick(0) is None
    seq.load(0x0)
    assert seq.oldest_pending_tick(0) == 0


def test_unattached_sequencer_rejects_issue():
    sim = Simulator()
    seq = Sequencer(sim, "lonely")
    with pytest.raises(RuntimeError):
        seq.load(0x0)
