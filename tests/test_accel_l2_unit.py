"""Directed unit tests for the shared accelerator L2 (two-level design).

Real Table-1 L1s sit below; a RawAgent plays Crossing Guard above, so
the L2's upward interface discipline (Table 1 at L2 granularity, the
Put/Invalidate race, busy-state InvAcks) is observable message by
message.
"""

import pytest

from repro.accel.l1_single import AL1State, AccelL1
from repro.accel.two_level import AL2State, AccelL2Shared
from repro.host.cpu import Sequencer
from repro.memory.datablock import DataBlock
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.interface import AccelMsg

from tests.helpers import RawAgent

ADDR = 0x7000


def _build(n_l1=2, l2_sets=4, l2_assoc=2):
    sim = Simulator(seed=0, deadlock_threshold=200_000)
    net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = RawAgent(sim, "xg", net)
    l2 = AccelL2Shared(sim, "al2", net, net, "xg", num_sets=l2_sets, assoc=l2_assoc)
    net.attach(l2)
    l1s = []
    seqs = []
    for i in range(n_l1):
        l1 = AccelL1(sim, f"al1.{i}", net, "al2", num_sets=4, assoc=2)
        net.attach(l1)
        seq = Sequencer(sim, f"core.{i}")
        seq.attach(l1)
        l1s.append(l1)
        seqs.append(seq)
    return sim, xg, l2, l1s, seqs


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _go(sim):
    sim.run(max_ticks=sim.tick + 200, final_check=False)


def test_miss_goes_up_once_and_grants_locally_after():
    sim, xg, l2, l1s, seqs = _build()
    seqs[0].load(ADDR)
    _go(sim)
    assert len(xg.of_type(AccelMsg.GetS)) == 1
    xg.send(AccelMsg.DataE, ADDR, "al2", "fromxg", data=_block(4))
    _go(sim)
    assert l1s[0].block_state(ADDR) in (AL1State.E, AL1State.M)
    # second core's load is served L1-to-L1 via the L2: no new XG traffic
    before = len(xg.received)
    out = []
    seqs[1].load(ADDR, lambda m, d: out.append(d.read_byte(0)))
    _go(sim)
    assert out == [4]
    assert len(xg.received) == before


def test_xg_invalidate_collects_all_l1_copies():
    sim, xg, l2, l1s, seqs = _build()
    seqs[0].store(ADDR, 5)
    _go(sim)
    xg.send(AccelMsg.DataM, ADDR, "al2", "fromxg", data=_block(), dirty=True)
    _go(sim)
    assert l1s[0].block_state(ADDR) is AL1State.M
    xg.send(AccelMsg.Invalidate, ADDR, "al2", "fromxg")
    _go(sim)
    wbs = xg.of_type(AccelMsg.DirtyWB)
    assert wbs and wbs[0].data.read_byte(0) == 5
    assert l1s[0].block_state(ADDR) is AL1State.I
    assert l2._state(ADDR) is AL2State.NP


def test_xg_invalidate_shared_only_acks():
    sim, xg, l2, l1s, seqs = _build()
    seqs[0].load(ADDR)
    _go(sim)
    xg.send(AccelMsg.DataS, ADDR, "al2", "fromxg", data=_block())
    _go(sim)
    xg.send(AccelMsg.Invalidate, ADDR, "al2", "fromxg")
    _go(sim)
    assert xg.of_type(AccelMsg.InvAck)
    assert not xg.of_type(AccelMsg.CleanWB) and not xg.of_type(AccelMsg.DirtyWB)


def test_invalidate_for_absent_block_acks():
    sim, xg, l2, l1s, seqs = _build()
    xg.send(AccelMsg.Invalidate, ADDR, "al2", "fromxg")
    _go(sim)
    assert xg.of_type(AccelMsg.InvAck)


def test_l1_migration_with_writeback():
    sim, xg, l2, l1s, seqs = _build()
    seqs[0].store(ADDR, 11)
    _go(sim)
    xg.send(AccelMsg.DataM, ADDR, "al2", "fromxg", data=_block(), dirty=True)
    _go(sim)
    out = []
    seqs[1].load(ADDR, lambda m, d: out.append(d.read_byte(0)))
    _go(sim)
    assert out == [11], "owner recalled, data migrated through the L2"
    assert l1s[0].block_state(ADDR) is AL1State.I


def test_upgrade_through_xg_when_only_shared():
    sim, xg, l2, l1s, seqs = _build()
    seqs[0].load(ADDR)
    _go(sim)
    xg.send(AccelMsg.DataS, ADDR, "al2", "fromxg", data=_block(1))
    _go(sim)
    done = []
    seqs[0].store(ADDR, 2, lambda m, d: done.append(d.read_byte(0)))
    _go(sim)
    # the L2 only holds S from XG: must upgrade upward
    assert xg.of_type(AccelMsg.GetM)
    xg.send(AccelMsg.DataM, ADDR, "al2", "fromxg", data=_block(1), dirty=True)
    _go(sim)
    assert done == [2]


def test_eviction_writes_back_upward():
    sim, xg, l2, l1s, seqs = _build(l2_sets=1, l2_assoc=1)
    seqs[0].store(ADDR, 3)
    _go(sim)
    xg.send(AccelMsg.DataM, ADDR, "al2", "fromxg", data=_block(), dirty=True)
    _go(sim)
    seqs[0].load(ADDR + 0x40)  # forces inclusive L2 eviction of ADDR
    _go(sim)
    puts = xg.of_type(AccelMsg.PutM)
    assert puts and puts[0].data.read_byte(0) == 3
    xg.send(AccelMsg.WBAck, ADDR, "al2", "fromxg")
    xg.send(AccelMsg.DataE, ADDR + 0x40, "al2", "fromxg", data=_block())
    _go(sim)
    assert l2._state(ADDR) is AL2State.NP


def test_invalidate_during_upward_put_answers_invack():
    """Table 1's B row at the L2's upward face: the race XG resolves."""
    sim, xg, l2, l1s, seqs = _build(l2_sets=1, l2_assoc=1)
    seqs[0].store(ADDR, 3)
    _go(sim)
    xg.send(AccelMsg.DataM, ADDR, "al2", "fromxg", data=_block(), dirty=True)
    _go(sim)
    seqs[0].load(ADDR + 0x40)  # PutM goes up; L2 now in B_PUT for ADDR
    _go(sim)
    assert l2._state(ADDR) is AL2State.B_PUT
    xg.send(AccelMsg.Invalidate, ADDR, "al2", "fromxg")
    _go(sim)
    assert xg.of_type(AccelMsg.InvAck), "busy state answers InvAck"
    assert l2._state(ADDR) is AL2State.B_PUT, "still waiting for WBAck"
