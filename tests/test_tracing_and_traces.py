"""Tests for the message tracer and trace-driven workloads."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.sim.tracing import MessageTracer
from repro.workloads.synthetic import WorkloadDriver, run_drivers, streaming
from repro.workloads.trace import (
    TraceOp,
    TraceRecorder,
    load_trace,
    replay_drivers,
    save_trace,
    split_by_agent,
)


def _system(org=AccelOrg.XG, **kw):
    return build_system(SystemConfig(org=org, n_cpus=1, n_accel_cores=1, **kw))


def test_tracer_records_messages():
    system = _system()
    tracer = MessageTracer([system.host_net, system.accel_net])
    system.accel_seqs[0].store(0x1000, 5)
    system.sim.run()
    assert len(tracer) > 0
    assert any(e.network == "accel" for e in tracer.entries)
    assert any(e.network == "host" for e in tracer.entries)


def test_tracer_addr_filter():
    system = _system()
    tracer = MessageTracer([system.host_net, system.accel_net], addr_filter=[0x2000])
    system.accel_seqs[0].store(0x1000, 5)
    system.sim.run()
    assert len(tracer) == 0
    system.accel_seqs[0].store(0x2004, 5)  # same block as 0x2000
    system.sim.run()
    assert len(tracer) > 0
    assert all((e.msg.addr & ~63) == 0x2000 for e in tracer.entries)


def test_tracer_endpoint_filter_and_queries():
    system = _system()
    tracer = MessageTracer([system.host_net], endpoint_filter=["xg"])
    system.accel_seqs[0].load(0x3000)
    system.cpu_seqs[0].load(0x9000)
    system.sim.run()
    assert all("xg" in (e.msg.sender, e.msg.dest) for e in tracer.entries)
    assert tracer.for_block(0x3000)
    assert not tracer.for_block(0x9000)
    assert "xg" in tracer.format(tracer.tail(3))


def test_tracer_detach_restores_network():
    system = _system()
    tracer = MessageTracer([system.host_net])
    tracer.detach()
    system.cpu_seqs[0].load(0x1000)
    system.sim.run()
    assert len(tracer) == 0


def test_tracer_layered_detach_preserves_other_tracers():
    """Regression: detaching the first of two tracers on one network used
    to restore the pre-second-tracer ``send``, silently unhooking the
    survivor."""
    system = _system()
    first = MessageTracer([system.host_net])
    second = MessageTracer([system.host_net])
    first.detach()
    system.cpu_seqs[0].load(0x1000)
    system.sim.run()
    assert len(first) == 0
    assert len(second) > 0
    second.detach()
    # Last layer out restores the base method and drops the stack.
    assert not hasattr(system.host_net, "_tracer_stack")
    recorded = len(second)
    system.cpu_seqs[0].load(0x2000)
    system.sim.run()
    assert len(second) == recorded


def test_tracer_detach_out_of_order_and_idempotent():
    system = _system()
    a = MessageTracer([system.host_net])
    b = MessageTracer([system.host_net])
    c = MessageTracer([system.host_net])
    b.detach()
    b.detach()  # second detach is a no-op, not an error
    system.cpu_seqs[0].load(0x1000)
    system.sim.run()
    assert len(b) == 0
    assert len(a) > 0
    assert len(a) == len(c)
    c.detach()
    a.detach()
    assert not hasattr(system.host_net, "_tracer_stack")


def test_recorder_captures_issued_ops():
    system = _system()
    recorder = TraceRecorder(system.sequencers)
    driver = WorkloadDriver(
        system.sim, system.accel_seqs[0], streaming(0x4000, 10, seed=0), max_outstanding=2
    )
    run_drivers(system.sim, [driver])
    assert len(recorder) == driver.issued
    assert all(op.agent == "accel.0" for op in recorder.ops)
    recorder.detach()
    system.accel_seqs[0].load(0x4000)
    system.sim.run()
    assert len(recorder) == driver.issued  # detached: nothing new


def test_trace_save_load_roundtrip(tmp_path):
    ops = [
        TraceOp("accel.0", "store", 0x1000, 5),
        TraceOp("cpu.0", "load", 0x1001, None),
    ]
    path = tmp_path / "trace.jsonl"
    save_trace(ops, path)
    assert load_trace(path) == ops


def test_split_by_agent_preserves_order():
    ops = [
        TraceOp("a", "load", 1),
        TraceOp("b", "load", 2),
        TraceOp("a", "store", 3, 7),
    ]
    streams = split_by_agent(ops)
    assert streams["a"] == [("load", 1, None), ("store", 3, 7)]
    assert streams["b"] == [("load", 2, None)]


def test_record_on_one_config_replay_on_another(tmp_path):
    """The headline use: capture on the unsafe baseline, replay through
    Crossing Guard, compare runtimes on identical op streams."""
    source = _system(org=AccelOrg.ACCEL_SIDE)
    recorder = TraceRecorder(source.sequencers)
    drivers = [
        WorkloadDriver(source.sim, source.accel_seqs[0], streaming(0x4000, 12, seed=1)),
        WorkloadDriver(source.sim, source.cpu_seqs[0], streaming(0x8000, 6, seed=2)),
    ]
    baseline_ticks = run_drivers(source.sim, drivers)
    path = tmp_path / "t.jsonl"
    recorder.save(path)

    target = _system(org=AccelOrg.XG)
    replay = replay_drivers(target, load_trace(path), agent_map={"accel.0": "accel.0"})
    xg_ticks = run_drivers(target.sim, replay)
    assert xg_ticks > 0 and baseline_ticks > 0
    assert all(d.finished for d in replay)
    assert len(target.error_log) == 0


def test_replay_round_robins_unknown_agents():
    system = _system()
    ops = [TraceOp("mystery.9", "load", 0x1000), TraceOp("cpu.7", "load", 0x2000)]
    drivers = replay_drivers(system, ops)
    assert len(drivers) == 2
    run_drivers(system.sim, drivers)
