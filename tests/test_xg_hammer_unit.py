"""Directed unit tests for HammerCrossingGuard: RawAgents play the
directory, a peer cache, and the accelerator."""

import pytest

from repro.memory.datablock import DataBlock
from repro.protocols.hammer.messages import HammerMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.errors import Guarantee
from repro.xg.hammer_xg import HammerCrossingGuard
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.permissions import PagePermission, PermissionTable

from tests.helpers import RawAgent

ADDR = 0x5000


def _build(variant=XGVariant.FULL_STATE, default_perm=PagePermission.READ_WRITE,
           suppress_puts=False, n_peers=2):
    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = HammerCrossingGuard(
        sim, "xg", host_net, accel_net, "dir", n_peers,
        variant=variant,
        permissions=PermissionTable(default=default_perm),
        accel_timeout=100_000,
        suppress_puts=suppress_puts,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    directory = RawAgent(sim, "dir", host_net)
    peer = RawAgent(sim, "peer", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, directory, peer, accel


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _go(sim):
    sim.run(max_ticks=sim.tick + 100, final_check=False)


def test_get_counts_all_responses_then_grants():
    sim, xg, directory, peer, accel = _build(n_peers=2)
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    assert directory.of_type(HammerMsg.GetS)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    _go(sim)
    assert not accel.of_type(AccelMsg.DataE), "memory response still missing"
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block(5))
    _go(sim)
    grants = accel.of_type(AccelMsg.DataE)  # no sharing hints -> E
    assert grants and grants[0].data.read_byte(0) == 5
    assert directory.of_type(HammerMsg.UnblockE)


def test_shared_hint_grants_s():
    sim, xg, directory, peer, accel = _build(n_peers=1)
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response", shared_hint=True)
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    assert accel.of_type(AccelMsg.DataS)
    assert directory.of_type(HammerMsg.UnblockS)


def test_transactional_uses_gets_only_on_readonly_page():
    sim, xg, directory, peer, accel = _build(
        variant=XGVariant.TRANSACTIONAL, default_perm=PagePermission.READ, n_peers=1
    )
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    assert directory.of_type(HammerMsg.GetS_Only)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    assert accel.of_type(AccelMsg.DataS), "GetS_Only must cap the grant at S"


def test_two_phase_writeback_for_accel_putm():
    sim, xg, directory, peer, accel = _build(n_peers=1)
    # grant M first
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    assert accel.of_type(AccelMsg.DataM)
    # accel writes back
    accel.send(AccelMsg.PutM, ADDR, "xg", "accel_request", data=_block(9), dirty=True)
    _go(sim)
    assert accel.of_type(AccelMsg.WBAck), "accel acked immediately"
    puts = directory.of_type(HammerMsg.PutM)
    assert puts and puts[0].data is None, "phase 1 has no data"
    directory.send(HammerMsg.WBAck, ADDR, "xg", "forward")
    _go(sim)
    wbdata = directory.of_type(HammerMsg.WBData)
    assert wbdata and wbdata[0].data.read_byte(0) == 9 and wbdata[0].dirty


def test_puts_forwarded_or_suppressed():
    for suppress, expect in ((False, 1), (True, 0)):
        sim, xg, directory, peer, accel = _build(n_peers=1, suppress_puts=suppress)
        accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
        _go(sim)
        peer.send(HammerMsg.PeerAck, ADDR, "xg", "response", shared_hint=True)
        directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
        _go(sim)
        accel.send(AccelMsg.PutS, ADDR, "xg", "accel_request")
        _go(sim)
        assert accel.of_type(AccelMsg.WBAck)
        assert len(directory.of_type(HammerMsg.PutS)) == expect


def test_broadcast_probe_for_absent_block_answered_locally():
    """Full State XG answers probes for blocks the accel does not hold
    without consulting it — no accel-side message at all."""
    sim, xg, directory, peer, accel = _build()
    directory.send(HammerMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(HammerMsg.PeerAck)
    assert not accel.received, "accelerator never consulted"


def test_no_permission_probe_closes_side_channel_transactional():
    sim, xg, directory, peer, accel = _build(
        variant=XGVariant.TRANSACTIONAL, default_perm=PagePermission.NONE
    )
    directory.send(HammerMsg.Fwd_GetS, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(HammerMsg.PeerAck)
    assert not accel.received, "no-permission blocks must not leak probes"


def test_accel_shared_block_acked_with_hint_no_invalidate():
    sim, xg, directory, peer, accel = _build(n_peers=1)
    accel.send(AccelMsg.GetS, ADDR, "xg", "accel_request")
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response", shared_hint=True)
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    before = len(accel.received)
    directory.send(HammerMsg.Fwd_GetS, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    acks = [m for m in peer.of_type(HammerMsg.PeerAck) if m.shared_hint]
    assert acks, "sharer hint must be set"
    assert len(accel.received) == before, "a GetS does not disturb a sharer"


def test_owner_gets_probe_relinquishes_ownership():
    """Section 3.2.1: Fwd_GetS to an accel-owned block -> invalidate the
    accel, forward the dirty data, then Put the block back."""
    sim, xg, directory, peer, accel = _build(n_peers=1)
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    directory.send(HammerMsg.Fwd_GetS, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    assert accel.of_type(AccelMsg.Invalidate)
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response", data=_block(7), dirty=True)
    _go(sim)
    data_out = peer.of_type(HammerMsg.PeerData)
    assert data_out and data_out[0].data.read_byte(0) == 7 and data_out[0].shared_hint
    # the relinquish writeback
    puts = directory.of_type(HammerMsg.PutM)
    assert puts, "XG must hand ownership back (no O in the interface)"
    directory.send(HammerMsg.WBAck, ADDR, "xg", "forward")
    _go(sim)
    wbdata = directory.of_type(HammerMsg.WBData)
    assert wbdata and wbdata[0].data.read_byte(0) == 7
    assert xg.tbes.lookup(ADDR) is None


def test_stale_writeback_probe_answers_then_nack_absorbed():
    sim, xg, directory, peer, accel = _build(n_peers=1)
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    accel.send(AccelMsg.PutM, ADDR, "xg", "accel_request", data=_block(4), dirty=True)
    _go(sim)
    # a Fwd_GetM races the writeback: serve from the put data, then go IIA
    directory.send(HammerMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(HammerMsg.PeerData)[0].data.read_byte(0) == 4
    # a second probe must now get a plain ack (no stale data!)
    directory.send(HammerMsg.Fwd_GetS, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(HammerMsg.PeerAck)
    directory.send(HammerMsg.WBNack, ADDR, "xg", "forward")
    _go(sim)
    assert xg.tbes.lookup(ADDR) is None
    assert not directory.of_type(HammerMsg.WBData)


def test_g2a_zero_writeback_on_hammer():
    sim, xg, directory, peer, accel = _build(n_peers=1)
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "xg", "response")
    directory.send(HammerMsg.MemData, ADDR, "xg", "response", data=_block())
    _go(sim)
    directory.send(HammerMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="peer")
    _go(sim)
    accel.send(AccelMsg.InvAck, ADDR, "xg", "accel_response")  # WRONG: owner
    _go(sim)
    assert xg.error_log.count(Guarantee.G2A_STABLE_RESPONSE) == 1
    data_out = peer.of_type(HammerMsg.PeerData)
    assert data_out and data_out[0].data.is_zero()
