"""Unit tests for the SLICC-like controller framework."""

import enum

import pytest

from repro.coherence.controller import (
    CONSUMED,
    RETRY,
    STALL,
    CoherenceController,
    ProtocolError,
)
from repro.sim.message import Message
from repro.sim.simulator import Simulator


class St(enum.Enum):
    A = 1
    B = 2


class Ev(enum.Enum):
    Go = 1
    Block = 2
    Free = 3


class _Toy(CoherenceController):
    """Single-port controller: Block stalls an address until Free."""

    CONTROLLER_TYPE = "toy"
    PORTS = ("inbox",)

    def __init__(self, sim, name):
        self.blocked = set()
        self.processed = []
        super().__init__(sim, name)

    def _build_transitions(self):
        self.transitions[(St.A, Ev.Go)] = self._go
        self.transitions[(St.A, Ev.Block)] = self._block
        self.transitions[(St.A, Ev.Free)] = self._free

    def handle_message(self, port, msg):
        if msg.mtype is Ev.Go and msg.addr in self.blocked:
            return STALL
        return self.fire(St.A, msg.mtype, msg)

    def _go(self, msg):
        self.processed.append(msg.addr)
        return CONSUMED

    def _block(self, msg):
        self.blocked.add(msg.addr)
        return CONSUMED

    def _free(self, msg):
        self.blocked.discard(msg.addr)
        self.wake_stalled(msg.addr)
        return CONSUMED


def _send(ctrl, mtype, addr, tick=1):
    ctrl.deliver("inbox", tick, Message(mtype, addr, dest=ctrl.name))


def test_fire_records_coverage():
    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    _send(ctrl, Ev.Go, 0x40)
    sim.run()
    assert ctrl.coverage[(St.A, Ev.Go)] == 1
    assert (St.A, Ev.Go) in ctrl.possible_transitions()


def test_undefined_transition_raises_protocol_error():
    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    # mutating the table at runtime requires a recompile, like a SLICC
    # regeneration — the compiled fast path serves the flattened copy
    del ctrl.transitions[(St.A, Ev.Go)]
    ctrl.recompile_dispatch()
    _send(ctrl, Ev.Go, 0x40)
    with pytest.raises(ProtocolError):
        sim.run()


def test_stall_and_wake_preserves_order():
    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    _send(ctrl, Ev.Block, 0x40, tick=1)
    _send(ctrl, Ev.Go, 0x40, tick=2)
    _send(ctrl, Ev.Go, 0x40, tick=3)
    _send(ctrl, Ev.Go, 0x80, tick=4)  # different address: not stalled
    sim.run(final_check=False)
    assert ctrl.processed == [0x80]
    assert ctrl.stalled_count() == 2
    _send(ctrl, Ev.Free, 0x40, tick=sim.tick + 1)
    sim.run()
    assert ctrl.processed == [0x80, 0x40, 0x40]
    assert ctrl.stalled_count() == 0


def test_stall_index_wakes_only_the_freed_address():
    """Per-address stall buckets: waking one address releases exactly its
    messages, in arrival order, and the O(1) count tracks every step."""
    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    _send(ctrl, Ev.Block, 0x40, tick=1)
    _send(ctrl, Ev.Block, 0x80, tick=2)
    _send(ctrl, Ev.Go, 0x40, tick=3)
    _send(ctrl, Ev.Go, 0x80, tick=4)
    _send(ctrl, Ev.Go, 0x40, tick=5)
    _send(ctrl, Ev.Go, 0x80, tick=6)
    sim.run(final_check=False)
    assert ctrl.processed == []
    assert ctrl.stalled_count() == 4
    _send(ctrl, Ev.Free, 0x80, tick=sim.tick + 1)
    sim.run(final_check=False)
    assert ctrl.processed == [0x80, 0x80]
    assert ctrl.stalled_count() == 2
    _send(ctrl, Ev.Free, 0x40, tick=sim.tick + 1)
    sim.run()
    assert ctrl.processed == [0x80, 0x80, 0x40, 0x40]
    assert ctrl.stalled_count() == 0
    assert ctrl.stats.get("stalls") == 4


def test_diagnose_reports_stalled_messages():
    from repro.sim.simulator import DeadlockError

    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    _send(ctrl, Ev.Block, 0x40)
    _send(ctrl, Ev.Go, 0x40, tick=2)
    _send(ctrl, Ev.Go, 0x40, tick=3)
    with pytest.raises(DeadlockError) as info:
        sim.run()
    report = info.value.diagnose()
    assert "stalled_msgs=2" in report


def test_dispatch_mode_legacy_matches_compiled():
    from repro.coherence.controller import dispatch_mode

    results = {}
    for mode in ("compiled", "legacy"):
        with dispatch_mode(mode):
            sim = Simulator()
            ctrl = _Toy(sim, "toy")
            # compiled mode installs the per-instance closure; legacy
            # keeps the class method
            assert ("fire" in ctrl.__dict__) == (mode == "compiled")
            _send(ctrl, Ev.Block, 0x40, tick=1)
            _send(ctrl, Ev.Go, 0x40, tick=2)
            _send(ctrl, Ev.Go, 0x80, tick=3)
            _send(ctrl, Ev.Free, 0x40, tick=4)
            sim.run()
        results[mode] = (ctrl.processed, dict(ctrl.coverage), ctrl.stats.as_dict())
    assert results["compiled"] == results["legacy"]


def test_stalled_forever_is_a_deadlock():
    """Messages left in stall buffers at idle are exactly the deadlock the
    watchdog exists to catch (a wedged accelerator transaction)."""
    from repro.sim.simulator import DeadlockError

    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    _send(ctrl, Ev.Block, 0x40)
    _send(ctrl, Ev.Go, 0x40, tick=2)
    with pytest.raises(DeadlockError):
        sim.run()
    assert ctrl.oldest_pending_tick(sim.tick) is not None


def test_coverage_exempt_excluded_from_denominator():
    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    ctrl.coverage_exempt.add((St.A, Ev.Free))
    assert (St.A, Ev.Free) not in ctrl.possible_transitions()
    assert (St.A, Ev.Go) in ctrl.possible_transitions()


class _WakerDuringHandle(CoherenceController):
    """Regression: a handler that wakes stalled messages onto its own port
    head must not cause the just-handled message to be processed twice."""

    CONTROLLER_TYPE = "waker"
    PORTS = ("inbox",)

    def __init__(self, sim, name):
        self.log = []
        self.armed = False
        super().__init__(sim, name)

    def _build_transitions(self):
        return

    def handle_message(self, port, msg):
        self.log.append(msg.mtype)
        if msg.mtype == "stall_me" and not self.armed:
            self.armed = True
            return STALL
        if msg.mtype == "waker":
            self.wake_stalled(msg.addr)
        return CONSUMED


def test_wake_during_handle_no_double_processing():
    sim = Simulator()
    ctrl = _WakerDuringHandle(sim, "w")
    ctrl.deliver("inbox", 1, Message("stall_me", 0x40, dest="w"))
    ctrl.deliver("inbox", 2, Message("waker", 0x40, dest="w"))
    sim.run()
    # "waker" must be consumed exactly once even though waking pushed
    # "stall_me" to the port head mid-handle (the double-pop regression).
    assert ctrl.log == ["stall_me", "waker", "stall_me"]


class _Retrier(CoherenceController):
    """RETRY blocks its own port head; an unlock on a higher-priority
    port releases it (mirrors mandatory-queue vs response-port shape)."""

    CONTROLLER_TYPE = "retrier"
    PORTS = ("control", "inbox")

    def __init__(self, sim, name):
        self.attempts = 0
        self.ready = False
        super().__init__(sim, name)

    def _build_transitions(self):
        return

    def handle_message(self, port, msg):
        if msg.mtype == "unlock":
            self.ready = True
            return CONSUMED
        self.attempts += 1
        return CONSUMED if self.ready else RETRY


def test_retry_leaves_message_at_head():
    sim = Simulator()
    ctrl = _Retrier(sim, "r")
    ctrl.deliver("inbox", 1, Message("work", 0x0, dest="r"))
    ctrl.deliver("control", 10, Message("unlock", 0x0, dest="r"))
    sim.run(max_ticks=5, final_check=False)
    assert not ctrl.ready and ctrl.attempts >= 1
    assert len(ctrl.in_ports["inbox"]) == 1  # "work" still at head
    sim.run()
    assert ctrl.ready
    assert len(ctrl.in_ports["inbox"]) == 0


def test_note_protocol_anomaly_counted():
    sim = Simulator()
    ctrl = _Toy(sim, "toy")
    ctrl.note_protocol_anomaly("weird", None)
    assert ctrl.stats.get("protocol_anomalies") == 1
    assert len(ctrl.protocol_errors) == 1
