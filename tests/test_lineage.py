"""Tests for the causal lineage + critical-path blame engine.

The engine's contract has three legs:

1. **Conservation** — every closed span's blame segments sum *exactly*
   to its duration, for every host protocol and accelerator mode, even
   under injected link faults (drops, duplicates, corruption).
2. **Neutrality** — lineage recording never perturbs the simulation:
   golden digests are byte-identical with lineage on and off.
3. **Determinism** — the mergeable BlameMatrix is byte-identical no
   matter how a campaign is fanned out over workers.

Plus the attribution specifics the paper's timeout/limiter machinery
demands (retry_backoff, throttle), the Perfetto flow arrows, and the
flight-recorder forensics view.
"""

import json

import pytest

from repro.eval.experiments import run_stress_coverage
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.obs import (
    SEGMENTS,
    BlameMatrix,
    LineageTracker,
    Telemetry,
    build_trace,
    render_blame,
    validate_trace,
)
from repro.obs.lineage import blame_matrix_from_telemetry
from repro.obs.recorder import FlightRecorder
from repro.obs.fabric import FabricCollector, use_fabric
from repro.testing.chaos import run_chaos_campaign
from repro.testing.golden import digest_system
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant

BLOCKS = [0x1000 + 64 * i for i in range(5)]


def _stress_system(host, variant, seed=0, ops=400, **overrides):
    config = SystemConfig(
        host=host,
        org=AccelOrg.XG,
        xg_variant=variant,
        n_cpus=2,
        cpu_l1_sets=4,
        cpu_l1_assoc=2,
        shared_l2_sets=8,
        shared_l2_assoc=4,
        randomize_latencies=True,
        seed=seed,
        lineage=True,
        **overrides,
    )
    system = build_system(config)
    obs = Telemetry(system.sim)
    tester = RandomTester(
        system.sim, system.sequencers, BLOCKS, ops_target=ops, store_fraction=0.45
    )
    tester.run()
    return system, obs


def _assert_conservation(obs):
    closed = obs.spans.closed
    assert closed, "run produced no closed spans"
    for span in closed:
        blame = span.meta.get("blame")
        assert blame is not None, f"span {span.sid} has no blame"
        assert set(blame) <= set(SEGMENTS), blame
        assert sum(blame.values()) == span.duration, (span, blame)
        path = span.meta["blame_path"]
        assert sum(ticks for _, ticks in path) == span.duration, (span, path)
        assert all(ticks > 0 for _, ticks in path)


# -- conservation across hosts x accel modes ---------------------------------


@pytest.mark.parametrize(
    "host",
    [HostProtocol.MESI, HostProtocol.MESIF, HostProtocol.HAMMER],
    ids=["mesi", "mesif", "hammer"],
)
@pytest.mark.parametrize(
    "variant",
    [XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL],
    ids=["full", "txn"],
)
def test_blame_conserves_exactly(host, variant):
    system, obs = _stress_system(host, variant, seed=1)
    _assert_conservation(obs)
    assert obs.lineage.evicted == 0 or len(obs.lineage.records) <= obs.lineage.capacity


def test_blame_conserves_under_link_faults():
    """Drops, duplicates, and corruption must not break conservation or
    leak tracker state (dropped sends return before the lineage hook;
    duplicate deliveries overwrite the same pending slot)."""
    result, system = run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults={"drop": 0.2, "duplicate": 0.15, "corrupt": 0.1},
        seed=4,
        duration=30_000,
        cpu_ops=300,
        telemetry=True,
        lineage=True,
    )
    obs = system.sim.obs
    assert system.config.fault_plan.total_injected > 0
    _assert_conservation(obs)
    tracker = obs.lineage
    # bounded by construction: records ring + one pending slot per record
    assert len(tracker.records) <= tracker.capacity
    assert len(tracker._pending) <= len(tracker.records)
    assert tracker.recorded == tracker.evicted + len(tracker.records)


# -- neutrality: lineage must never perturb the simulation -------------------


def test_golden_digest_identical_with_lineage_on():
    def run(lineage):
        config = SystemConfig(
            host=HostProtocol.MESI,
            org=AccelOrg.XG,
            xg_variant=XGVariant.FULL_STATE,
            n_cpus=2,
            cpu_l1_sets=4,
            cpu_l1_assoc=2,
            shared_l2_sets=8,
            shared_l2_assoc=4,
            randomize_latencies=True,
            seed=3,
            lineage=lineage,
        )
        system = build_system(config)
        obs = Telemetry(system.sim)
        tester = RandomTester(
            system.sim, system.sequencers, BLOCKS, ops_target=600,
            store_fraction=0.45,
        )
        tester.run()
        return digest_system(system, obs)

    assert run(False) == run(True)


# -- timeout / limiter attribution -------------------------------------------


def test_probe_retries_book_retry_backoff():
    """A lossy crossing forces Invalidate retries; the backoff windows
    must land in retry_backoff, not be smeared into queue_wait/service.
    The chaos adversary is a non-protocol endpoint, so this also covers
    the XG-side causal bridge (adopt_cause / tip_hint)."""
    result, system = run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults={"drop": 0.35},
        seed=5,
        duration=40_000,
        cpu_ops=400,
        contested_blocks=4,
        telemetry=True,
        lineage=True,
    )
    obs = system.sim.obs
    assert system.xg.stats.get("probe_retries") > 0
    _assert_conservation(obs)
    backoff = sum(
        span.meta["blame"].get("retry_backoff", 0) for span in obs.spans.closed
    )
    assert backoff > 0
    # every fully-timed-out probe waited through nothing but the retry
    # ladder: its whole duration is retry_backoff
    timed_out = [
        s for s in obs.spans.closed
        if s.kind == "probe" and s.status == "timeout"
        and any(p[0].startswith("retry") for p in s.phases)
        and s.meta["blame"].get("retry_backoff")
    ]
    assert timed_out


def test_rate_limiter_books_throttle():
    system, obs = _stress_system(
        HostProtocol.MESI, XGVariant.FULL_STATE, seed=0, ops=600,
        rate_limit=(1, 60),
    )
    assert system.xg.stats.get("rate_limited") > 0
    _assert_conservation(obs)
    throttle = sum(
        span.meta["blame"].get("throttle", 0) for span in obs.spans.closed
    )
    assert throttle > 0


# -- BlameMatrix: determinism, merge, rendering ------------------------------


def test_blame_matrix_worker_count_is_invisible():
    r1 = run_stress_coverage(
        seeds=range(1), ops_per_run=200, workers=1, telemetry=True, lineage=True
    )
    r2 = run_stress_coverage(
        seeds=range(1), ops_per_run=200, workers=2, telemetry=True, lineage=True
    )
    assert all(r["passed"] for r in r1["runs"])
    assert all(r["passed"] for r in r2["runs"])
    assert r1["blame"].canonical() == r2["blame"].canonical()


def test_blame_matrix_roundtrip_and_merge():
    system, obs = _stress_system(HostProtocol.MESI, XGVariant.FULL_STATE, seed=2)
    matrix = blame_matrix_from_telemetry(obs, "mesi/xg", seed=2)
    assert matrix.rows()
    clone = BlameMatrix.from_dict(matrix.as_dict())
    assert clone == matrix
    assert clone.canonical() == matrix.canonical()
    with pytest.raises(ValueError):
        matrix.merge(BlameMatrix(bucket_width=matrix.bucket_width * 2))
    text = render_blame(matrix, top=3)
    assert "span kind" in text and "retry_backoff" in text
    assert render_blame(BlameMatrix()).startswith("blame: no lineage recorded")
    # as_dict is JSON-clean
    json.dumps(matrix.as_dict())


# -- Perfetto flow arrows ----------------------------------------------------


def test_trace_flows_validate():
    system, obs = _stress_system(HostProtocol.MESI, XGVariant.FULL_STATE, seed=3,
                                 ops=600)
    assert obs.lineage.flows, "stress run recorded no causal span links"
    payload = build_trace(obs, label=system.config.label)
    flow_events = [e for e in payload["traceEvents"] if e.get("ph") in "stf"]
    assert flow_events
    ids = {e["id"] for e in flow_events}
    for flow_id in ids:
        phases = sorted(e["ph"] for e in flow_events if e["id"] == flow_id)
        assert "s" in phases and "f" in phases
    assert validate_trace(payload) == []


def test_trace_without_lineage_has_no_flows():
    """Regression: lineage off => zero flow events, and the trace still
    validates (the exporter must not emit dangling machinery)."""
    config = SystemConfig(
        host=HostProtocol.MESI, org=AccelOrg.XG,
        xg_variant=XGVariant.FULL_STATE, n_cpus=2, cpu_l1_sets=4,
        cpu_l1_assoc=2, shared_l2_sets=8, shared_l2_assoc=4, seed=3,
    )
    system = build_system(config)
    obs = Telemetry(system.sim)
    RandomTester(system.sim, system.sequencers, BLOCKS, ops_target=300,
                 store_fraction=0.45).run()
    payload = build_trace(obs, label=system.config.label)
    assert [e for e in payload["traceEvents"] if e.get("ph") in "stf"] == []
    assert validate_trace(payload) == []


def test_validate_trace_rejects_dangling_flows():
    base = {"pid": 1, "tid": 1, "cat": "flow", "name": "x"}
    def trace(*events):
        return {"traceEvents": list(events), "displayTimeUnit": "ns"}

    start = dict(base, ph="s", ts=1, id=7)
    step = dict(base, ph="t", ts=2, id=7)
    finish = dict(base, ph="f", ts=3, id=7, bp="e")
    assert validate_trace(trace(start, step, finish)) == []
    assert any("dangling" in p for p in validate_trace(trace(start)))
    assert any("dangling" in p for p in validate_trace(trace(finish)))
    assert any("lacks a matching" in p for p in validate_trace(trace(step)))
    bad_bind = dict(base, ph="f", ts=3, id=7, bp="s")  # enclosing-slice bind
    assert any("bp" in p for p in validate_trace(trace(start, bad_bind)))


# -- forensics: flight recorder + campaign black boxes -----------------------


def test_flight_recorder_ships_critical_path():
    system, obs = _stress_system(HostProtocol.MESI, XGVariant.FULL_STATE, seed=1,
                                 ops=300)
    # reopen a span so the snapshot has a wedged transaction to explain
    span = obs.spans.start("op_load", "seq0", 0x1000, system.sim.tick)
    recorder = FlightRecorder()
    snap = recorder.snapshot(sim=system.sim, error="synthetic")
    path = snap["critical_path"]
    assert path["sid"] == span.sid
    assert path["end"] >= path["start"]
    assert sum(path["segments"].values()) == path["end"] - path["start"]
    assert set(path["segments"]) <= set(SEGMENTS)


def test_partial_blame_conserves():
    tracker = LineageTracker()

    class _Span:
        sid, kind, component, addr, start = 9, "probe", "xg", 0x40, 100

    blame = tracker.partial_blame(_Span, 350)
    assert blame["segments"] == {"service": 250}
    assert blame["path"] == [("service", 250)]


def test_forensics_all_keeps_successful_black_boxes():
    collector = FabricCollector(renderer=None, config={"forensics_all": True})
    with use_fabric(collector):
        result = run_stress_coverage(
            seeds=range(1), ops_per_run=120, workers=1, telemetry=True
        )
    assert all(r["passed"] for r in result["runs"])
    kept = result.get("forensics")
    assert kept, "forensics_all kept no black boxes for successful jobs"
    for entry in kept:
        assert entry["forensics"]["flight_recorder"]["frames_seen"] > 0
        json.dumps(entry)  # must cross process/report boundaries as JSON

    # default config: success leaves no forensics behind
    plain = run_stress_coverage(seeds=range(1), ops_per_run=120, workers=1)
    assert "forensics" not in plain


# -- tracker unit behavior ---------------------------------------------------


class _Msg:
    __slots__ = ("uid", "mtype", "sender", "dest")

    def __init__(self, uid, mtype="GetM", sender="a", dest="b"):
        self.uid = uid
        self.mtype = mtype
        self.sender = sender
        self.dest = dest


def test_ring_eviction_clears_pending():
    tracker = LineageTracker(capacity=4)
    for uid in range(10):
        tracker.record_send(_Msg(uid), uid, uid + 5, 5)
    assert len(tracker.records) == 4
    assert len(tracker._pending) == 4
    assert tracker.evicted == 6
    # evicted uids are gone; surviving ones still resolve
    assert tracker.begin(0, 20, "service") == 0
    assert tracker.begin(9, 20, "service") != 0


def test_site_hint_and_requeue_kind_are_one_shot():
    tracker = LineageTracker()
    tracker.site_hint = "retry_backoff"
    first = tracker.record_send(_Msg(1), 10, 15, 5)
    second = tracker.record_send(_Msg(2), 10, 15, 5)
    assert tracker.records[first].site == "retry_backoff"
    assert tracker.records[second].site == ""

    lid = tracker.begin(2, 15, "service")
    tracker.requeue_kind = "throttle"
    tracker.requeued(lid, 15)
    assert tracker.records[lid].wait_kind == "throttle"
    lid2 = tracker.begin(1, 20, "service")
    tracker.requeued(lid2, 20)
    assert tracker.records[lid2].wait_kind == "stall"


def test_adopt_cause_only_bridges_unset_causes():
    tracker = LineageTracker()
    probe = tracker.record_send(_Msg(1), 10, 12, 2)
    reply = tracker.record_send(_Msg(2), 30, 33, 3)
    tracker.begin(2, 33, "xg_translate")
    tracker.adopt_cause(probe)
    assert tracker.records[reply].cause == probe
    other = tracker.record_send(_Msg(3), 40, 41, 1)
    tracker.adopt_cause(other)  # already caused: must not be rewritten
    assert tracker.records[reply].cause == probe
