"""Message-pool lifecycle tests: recycling, generations, debug poisoning.

The pool is module-global state, so every test drains it first for a
deterministic starting point and restores debug mode on the way out.
"""

import pytest

from repro.memory.datablock import DataBlock
from repro.sim import message as message_mod
from repro.sim.message import Message, PoolError, pool_stats, set_pool_debug


@pytest.fixture(autouse=True)
def clean_pool():
    message_mod._POOL.clear()
    set_pool_debug(False)
    yield
    message_mod._POOL.clear()
    set_pool_debug(False)


def test_release_recycles_the_instance():
    msg = Message("probe", 0x40, sender="a", dest="b")
    msg.release()
    assert pool_stats()["free"] == 1
    recycled = Message("other", 0x80, sender="c", dest="d")
    assert recycled is msg, "construction must reuse the pooled carrier"
    assert pool_stats()["free"] == 0
    assert recycled.mtype == "other"
    assert recycled.addr == 0x80
    assert recycled.sender == "c"
    assert recycled.data is None
    assert recycled._pooled is False


def test_uid_stream_is_dense_and_deterministic_under_recycling():
    """Recycled construction draws uids exactly like fresh construction."""
    first = Message("m", 0)
    start = first.uid
    first.release()
    uids = []
    for _ in range(10):
        msg = Message("m", 0)
        uids.append(msg.uid)
        msg.release()
    assert uids == list(range(start + 1, start + 11))


def test_release_clears_payload_references():
    block = DataBlock(fill=0xAB)
    msg = Message("data", 0x40, data=block, requestor="seq0", value=7)
    msg.release()
    assert msg.data is None
    assert msg.requestor is None
    assert msg.value is None


def test_double_release_is_silent_noop_without_debug():
    msg = Message("m", 0)
    msg.release()
    msg.release()  # no error, and crucially no duplicate pool entry
    assert pool_stats()["free"] == 1


def test_double_release_raises_under_pool_debug():
    set_pool_debug(True)
    msg = Message("m", 0)
    msg.release()
    with pytest.raises(PoolError):
        msg.release()
    assert pool_stats()["free"] == 1


def test_released_fields_are_poisoned_under_pool_debug():
    set_pool_debug(True)
    msg = Message("m", 0x40, sender="a", dest="b")
    msg.release()
    with pytest.raises(PoolError):
        bool(msg.mtype)
    with pytest.raises(PoolError):
        bool(msg.dest)
    # Reconstruction un-poisons: the next Message() is fully usable.
    fresh = Message("clean", 0x80, sender="x", dest="y")
    assert fresh is msg
    assert fresh.mtype == "clean"
    assert fresh.dest == "y"


def test_generation_counter_detects_stale_holds():
    msg = Message("m", 0x40)
    held_gen = msg.gen
    assert msg.gen == held_gen  # holder snapshots (msg, gen)
    msg.release()
    assert msg.gen == held_gen + 1, "release bumps the carrier generation"
    recycled = Message("m2", 0x80)
    assert recycled is msg
    # The stale holder's snapshot no longer matches: it must not trust
    # the fields it can still reach through its reference.
    assert recycled.gen != held_gen


def test_clone_keeps_uid_and_burns_no_counter_values():
    original = Message("fwd", 0x40, sender="a", dest="b", ack_count=3)
    dup = original.clone()
    assert dup is not original
    assert dup.uid == original.uid
    assert dup.mtype == original.mtype
    assert dup.ack_count == original.ack_count
    # The global uid counter did not advance for the clone: the next
    # real message is uid-adjacent to the original.
    follow_up = Message("m", 0)
    assert follow_up.uid == original.uid + 1


def test_clone_payload_is_private():
    block = DataBlock(fill=0x11)
    original = Message("data", 0x40, data=block)
    dup = original.clone()
    assert dup.data is not original.data
    dup.data.write_byte(0, 0xFF)
    assert original.data.read_byte(0) == 0x11


def test_clone_of_recycled_carrier_is_independent():
    original = Message("m", 0x40, sender="a", dest="b")
    dup = original.clone()
    original.release()
    reused = Message("other", 0x80, sender="x", dest="y")
    assert reused is original
    # The clone is untouched by its original's recycling.
    assert dup.mtype == "m"
    assert dup.sender == "a"
    assert dup._pooled is False


def test_pool_respects_capacity_cap():
    cap = message_mod._POOL_MAX
    messages = [Message("m", 0) for _ in range(cap + 50)]
    for msg in messages:
        msg.release()
    assert pool_stats()["free"] == cap


def test_system_config_plumbs_pool_debug():
    from repro.host.config import SystemConfig
    from repro.host.system import build_system

    build_system(SystemConfig(pool_debug=True))
    assert pool_stats()["debug"] is True
    build_system(SystemConfig())
    assert pool_stats()["debug"] is False
