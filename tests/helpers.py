"""Shared test helpers: mini system builders and a raw message agent."""

from repro.host.cpu import Sequencer
from repro.memory.main_memory import MainMemory
from repro.protocols.hammer.cache import HammerCache
from repro.protocols.hammer.directory import HammerDirectory
from repro.protocols.mesi.l1 import MesiL1
from repro.protocols.mesi.l2 import MesiL2
from repro.sim.component import Component
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator


class RawAgent(Component):
    """Records every delivery; can inject arbitrary protocol messages.

    Appears on the network under any name, with every port name protocols
    use — ideal for black-box driving a directory, an L2, or Crossing
    Guard with scripted sequences.
    """

    PORTS = ("response", "forward", "fromxg", "accel_response", "accel_request", "request")
    watchdog_exempt = True

    def __init__(self, sim, name, net):
        super().__init__(sim, name)
        self.net = net
        self.received = []
        net.attach(self)

    def wakeup(self):
        for port in self.PORTS:
            while True:
                msg = self.in_ports[port].pop(self.sim.tick)
                if msg is None:
                    break
                self.received.append((self.sim.tick, port, msg))

    def send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def of_type(self, mtype):
        return [msg for _t, _p, msg in self.received if msg.mtype is mtype]

    def last(self):
        return self.received[-1][2] if self.received else None


class MesiHost:
    """A tiny MESI host: N L1s + sequencers, shared L2, memory."""

    def __init__(self, n_cpus=2, l1_sets=4, l1_assoc=2, l2_sets=8, l2_assoc=4, seed=0,
                 xg_tolerant=False, mem_latency=10):
        self.sim = Simulator(seed=seed, deadlock_threshold=500_000)
        self.net = Network(self.sim, FixedLatency(1), name="host")
        self.memory = MainMemory(latency=mem_latency)
        self.l2 = MesiL2(
            self.sim, "l2", self.net, self.memory,
            num_sets=l2_sets, assoc=l2_assoc, xg_tolerant=xg_tolerant,
        )
        self.net.attach(self.l2)
        self.l1s = []
        self.seqs = []
        for i in range(n_cpus):
            l1 = MesiL1(self.sim, f"l1.{i}", self.net, "l2", num_sets=l1_sets, assoc=l1_assoc)
            self.net.attach(l1)
            seq = Sequencer(self.sim, f"cpu.{i}")
            seq.attach(l1)
            self.l1s.append(l1)
            self.seqs.append(seq)

    def load(self, cpu, addr):
        out = {}
        self.seqs[cpu].load(addr, lambda m, d: out.update(data=d))
        self.sim.run()
        return out["data"]

    def store(self, cpu, addr, value):
        self.seqs[cpu].store(addr, value)
        self.sim.run()


class HammerHost:
    """A tiny Hammer host: N caches + sequencers, directory, memory."""

    def __init__(self, n_cpus=2, sets=4, assoc=2, seed=0, xg_tolerant=False, mem_latency=10):
        self.sim = Simulator(seed=seed, deadlock_threshold=500_000)
        self.net = Network(self.sim, FixedLatency(1), name="host")
        self.memory = MainMemory(latency=mem_latency)
        names = [f"cache.{i}" for i in range(n_cpus)]
        self.directory = HammerDirectory(self.sim, "dir", self.net, self.memory, cache_names=names)
        self.net.attach(self.directory)
        self.caches = []
        self.seqs = []
        for i in range(n_cpus):
            cache = HammerCache(
                self.sim, names[i], self.net, "dir", n_peers=n_cpus - 1,
                num_sets=sets, assoc=assoc, xg_tolerant=xg_tolerant,
            )
            self.net.attach(cache)
            seq = Sequencer(self.sim, f"cpu.{i}")
            seq.attach(cache)
            self.caches.append(cache)
            self.seqs.append(seq)

    def load(self, cpu, addr):
        out = {}
        self.seqs[cpu].load(addr, lambda m, d: out.update(data=d))
        self.sim.run()
        return out["data"]

    def store(self, cpu, addr, value):
        self.seqs[cpu].store(addr, value)
        self.sim.run()
