"""Property-based consistency checks across all organizations.

With operations fully drained between issues, every configuration must
behave like one sequentially consistent memory: a load returns the value
of the most recent store to that byte, from ANY core or accelerator.
Hypothesis generates the op sequences; the reference model is a dict.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.testing.invariants import check_all
from repro.xg.interface import XGVariant

BLOCKS = [0x2000 + 64 * i for i in range(4)]

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["cpu", "accel"]),  # who
        st.integers(min_value=0, max_value=1),  # which core of that kind
        st.sampled_from(["load", "store"]),
        st.integers(min_value=0, max_value=3),  # block index
        st.integers(min_value=0, max_value=1),  # byte offset
        st.integers(min_value=1, max_value=200),  # store value
    ),
    min_size=1,
    max_size=25,
)


def _config(host, org, variant=XGVariant.FULL_STATE, levels=1):
    return SystemConfig(
        host=host,
        org=org,
        xg_variant=variant,
        accel_levels=levels,
        n_cpus=2,
        n_accel_cores=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        accel_l2_sets=2,
        accel_l2_assoc=2,
        seed=1,
    )


def _run_sequence(config, ops):
    system = build_system(config)
    reference = {}
    for who, core, kind, block_index, offset, value in ops:
        seqs = system.cpu_seqs if who == "cpu" else system.accel_seqs
        seq = seqs[core % len(seqs)]
        addr = BLOCKS[block_index] + offset
        if kind == "store":
            seq.store(addr, value)
            system.sim.run()
            reference[addr] = value
        else:
            out = {}
            seq.load(addr, lambda m, d: out.update(data=d))
            system.sim.run()
            observed = out["data"].read_byte(addr % out["data"].size)
            assert observed == reference.get(addr, 0), (
                f"{config.label}: load {addr:#x} saw {observed}, "
                f"expected {reference.get(addr, 0)}"
            )
    check_all(system)
    if system.error_log is not None:
        assert len(system.error_log) == 0


_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize(
    "host",
    [HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF],
    ids=["mesi", "hammer", "mesif"],
)
class TestSequentialBehavior:
    @given(ops=op_strategy)
    @_SETTINGS
    def test_xg_full_state(self, host, ops):
        _run_sequence(_config(host, AccelOrg.XG, XGVariant.FULL_STATE), ops)

    @given(ops=op_strategy)
    @_SETTINGS
    def test_xg_transactional_two_level(self, host, ops):
        _run_sequence(
            _config(host, AccelOrg.XG, XGVariant.TRANSACTIONAL, levels=2), ops
        )

    @given(ops=op_strategy)
    @_SETTINGS
    def test_accel_side(self, host, ops):
        _run_sequence(_config(host, AccelOrg.ACCEL_SIDE), ops)

    @given(ops=op_strategy)
    @_SETTINGS
    def test_host_side(self, host, ops):
        _run_sequence(_config(host, AccelOrg.HOST_SIDE), ops)
