"""Integration tests for wide-block translation through the shim."""

import pytest

from repro.eval.overheads import build_translation_system
from repro.testing.random_tester import RandomTester


def _op(system, seq, kind, addr, value=None):
    out = {}
    if kind == "load":
        seq.load(addr, lambda m, d: out.update(data=d))
    else:
        seq.store(addr, value, lambda m, d: out.update(data=d))
    system.sim.run()
    return out.get("data")


def test_wide_store_visible_to_cpu_at_host_granularity():
    system, shim = build_translation_system(accel_block=256, seed=0)
    accel = system.accel_seqs[0]
    cpu = system.cpu_seqs[0]
    # The accelerator writes bytes in three different 64B components of
    # one 256B block.
    _op(system, accel, "store", 0x40000, 1)
    _op(system, accel, "store", 0x40040, 2)
    _op(system, accel, "store", 0x40080, 3)
    assert shim.stats.get("wide_fetches") == 1, "one wide fetch covers all"
    assert _op(system, cpu, "load", 0x40000).read_byte(0) == 1
    assert _op(system, cpu, "load", 0x40040).read_byte(0) == 2
    assert _op(system, cpu, "load", 0x40080).read_byte(0) == 3


def test_cpu_store_invalidates_whole_wide_block():
    system, shim = build_translation_system(accel_block=128, seed=0)
    accel = system.accel_seqs[0]
    cpu = system.cpu_seqs[0]
    _op(system, accel, "load", 0x40000)
    _op(system, cpu, "store", 0x40040, 9)  # second component of the pair
    data = _op(system, accel, "load", 0x40040)
    assert data.read_byte(0x40040 % data.size) == 9


def test_wide_eviction_splits_writeback():
    system, shim = build_translation_system(accel_block=128, seed=0, stress=True)
    accel = system.accel_seqs[0]
    cpu = system.cpu_seqs[0]
    # Small wide L1 (4 sets x 2): write more wide blocks than fit.
    for i in range(12):
        _op(system, accel, "store", 0x40000 + 128 * i, i + 1)
    assert shim.stats.get("wide_writebacks") > 0
    for i in range(12):
        assert _op(system, cpu, "load", 0x40000 + 128 * i).read_byte(0) == i + 1


def test_translation_random_stress_checked():
    system, shim = build_translation_system(accel_block=256, seed=4, stress=True)
    pool = [0x10000 + 64 * i for i in range(24)]
    tester = RandomTester(
        system.sim, system.sequencers, pool, ops_target=1500, store_fraction=0.4
    )
    tester.run()
    assert tester.loads_checked > 500
    assert len(system.error_log) == 0


def test_merged_grant_is_datam():
    """The shim's uniform-grant policy: the accelerator always receives
    DataM (legal for both GetS and GetM per the interface)."""
    system, shim = build_translation_system(accel_block=128, seed=0)
    accel = system.accel_seqs[0]
    _op(system, accel, "load", 0x40000)
    wide_l1 = system.accel_caches[0]
    from repro.accel.l1_single import AL1State

    assert wide_l1.block_state(0x40000) is AL1State.M
