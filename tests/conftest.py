"""Pytest fixtures built on tests.helpers."""

import pytest

from tests.helpers import HammerHost, MesiHost, RawAgent  # noqa: F401


@pytest.fixture
def mesi_host():
    return MesiHost()


@pytest.fixture
def hammer_host():
    return HammerHost()
