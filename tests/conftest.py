"""Pytest fixtures built on tests.helpers."""

import pytest

from tests.helpers import HammerHost, MesiHost, RawAgent  # noqa: F401


def pytest_addoption(parser):
    parser.addoption(
        "--explore-full", action="store_true", default=False,
        help="run full state-space enumerations (minutes per cell); "
             "tier-1 runs only capped explorations without this flag",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--explore-full"):
        return
    skip = pytest.mark.skip(reason="full enumeration: needs --explore-full")
    for item in items:
        if "explore_full" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def mesi_host():
    return MesiHost()


@pytest.fixture
def hammer_host():
    return HammerHost()
