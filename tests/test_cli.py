"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_demo_runs_clean(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "accel read: 21" in out
    assert "cpu read: 42" in out
    assert "guarantee violations: 0" in out


def test_demo_hammer_transactional(capsys):
    assert main(["demo", "--host", "hammer", "--variant", "transactional"]) == 0
    assert "hammer/xg-txn-L1" in capsys.readouterr().out


def test_verify_command(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "transactional-style" in out and "OK" in out


def test_fuzz_command_safe(capsys):
    assert main(["fuzz", "--duration", "8000", "--cpu-ops", "200"]) == 0
    out = capsys.readouterr().out
    assert "host_safe: True" in out


def test_chaos_command_safe(capsys):
    assert main([
        "chaos", "--duration", "10000", "--cpu-ops", "200", "--rate", "0.2",
        "--accel-timeout", "1500", "--probe-retries", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "host_safe: True" in out
    assert "faults_total:" in out


def test_chaos_command_blackhole_and_disable(capsys):
    assert main([
        "chaos", "--duration", "12000", "--cpu-ops", "200", "--rate", "0.1",
        "--blackhole", "3000:6000", "--accel-timeout", "1500",
        "--adversary", "fuzz", "--disable-after", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "host_safe: True" in out
    assert "OS error log:" in out


def test_experiment_e1(capsys):
    assert main(["experiment", "e1"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["experiment", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_stress_small(capsys):
    assert main(["stress", "--seeds", "1", "--ops", "400"]) == 0
    assert "stress runs, 0 failures" in capsys.readouterr().out


def test_stress_live_plain_on_non_tty(capsys, tmp_path):
    # capsys' stdout is not a TTY, so --live must degrade to periodic
    # plain-text lines (no ANSI) and still produce the normal report
    dash = tmp_path / "campaign_dash.json"
    assert main([
        "stress", "--seeds", "1", "--ops", "300", "--workers", "2",
        "--live", "--live-interval", "0.2", "--dash-out", str(dash),
    ]) == 0
    out = capsys.readouterr().out
    assert "\x1b[" not in out, "non-TTY live output must stay plain"
    assert "fabric: jobs" in out
    assert "stress runs, 0 failures" in out
    import json

    payload = json.loads(dash.read_text())
    assert payload["schema"] == "repro.campaign_dash/1"
    assert payload["fabric"]["jobs_done"] == payload["fabric"]["jobs_total"]


def test_top_command_prints_fabric_summary(capsys):
    assert main(["top", "--seeds", "1", "--ops", "300", "--workers", "1",
                 "--live-interval", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "campaign fabric summary" in out
    assert "job_ms" in out
    assert "\x1b[" not in out


def test_fuzz_live_frames_single_run(capsys):
    assert main(["fuzz", "--duration", "8000", "--cpu-ops", "200",
                 "--live", "--live-interval", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "host_safe: True" in out
    assert "fabric: jobs 1/1" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
