"""E5 — Performance figure: runtime of the 12 cache organizations.

Paper claim: "Crossing Guard performs similarly to the unsafe,
hard-to-design accelerator-side cache and better than a safe but
high-latency host-side cache."
"""

from repro.eval.perf import run_perf_sweep
from repro.eval.report import format_table


def test_perf_runtime(once):
    from repro.host.config import HostProtocol

    results = once(
        run_perf_sweep,
        scale=1,
        hosts=(HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF),
    )
    print()
    for workload, rows in results.items():
        print(
            format_table(
                ["config", "ticks", "normalized", "host msgs"],
                [
                    (r["config"], r["ticks"], f"{r['ticks_norm']:.2f}x", r["host_net_messages"])
                    for r in rows
                ],
                title=f"runtime: {workload}",
            )
        )
        print()
    # Shape assertions on the cache-friendly workloads: XG close to the
    # unsafe baseline, host-side clearly worse.
    for workload in ("blocked_decode", "graph_walk", "write_coalesce"):
        rows = results[workload]
        for host_prefix in ("mesi/", "hammer/", "mesif/"):
            host_rows = [r for r in rows if r["config"].startswith(host_prefix)]
            host_rows = [r for r in host_rows if r["config"].split("/")[0] + "/" == host_prefix]
            by_org = {r["config"].split("/")[1]: r for r in host_rows}
            assert by_org["host-side"]["ticks_norm"] > 1.2, (workload, host_prefix)
            assert by_org["xg-full-L1"]["ticks_norm"] < 1.15, (workload, host_prefix)
            assert by_org["xg-txn-L1"]["ticks_norm"] < 1.15, (workload, host_prefix)
    # No spurious guarantee violations anywhere.
    for rows in results.values():
        assert all(r.get("xg_errors", 0) == 0 for r in rows)
