"""Ablation — where the organization crossover falls.

The host-side cache (Figure 2b) wins only when the accelerator's pattern
defeats caching; the crossing latency decides how much each organization
pays. This bench sweeps the crossing latency for a cache-averse workload
(streaming) and a cache-friendly one (blocked_decode) and reports the
XG-vs-host-side ratio — locating the crossover the organizations trade
around.
"""

from repro.eval.perf import run_one
from repro.eval.report import format_table
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.workloads.synthetic import PERF_WORKLOADS
from repro.xg.interface import XGVariant


def _ticks(org, workload_builder, crossing, **kw):
    config = SystemConfig(
        host=HostProtocol.MESI, org=org, crossing_latency=crossing,
        n_cpus=2, n_accel_cores=2, seed=7, **kw,
    )
    row, _system = run_one(config, workload_builder)
    return row["ticks"]


def test_crossing_latency_crossover(once):
    def run():
        workloads = PERF_WORKLOADS(scale=1)
        out = {}
        for name in ("streaming", "blocked_decode"):
            rows = []
            for crossing in (10, 40, 120):
                xg = _ticks(
                    AccelOrg.XG, workloads[name], crossing,
                    xg_variant=XGVariant.FULL_STATE,
                )
                hostside = _ticks(AccelOrg.HOST_SIDE, workloads[name], crossing)
                rows.append(
                    {
                        "crossing": crossing,
                        "xg": xg,
                        "hostside": hostside,
                        "ratio": hostside / xg,
                    }
                )
            out[name] = rows
        return out

    results = once(run)
    print()
    for workload, rows in results.items():
        print(
            format_table(
                ["crossing latency", "XG ticks", "host-side ticks", "host-side/XG"],
                [
                    (r["crossing"], r["xg"], r["hostside"], f"{r['ratio']:.2f}x")
                    for r in rows
                ],
                title=f"crossover sweep: {workload}",
            )
        )
        print()
    # Cache-friendly: XG's advantage must GROW with the crossing latency
    # (host-side pays it per access, XG per miss).
    friendly = [r["ratio"] for r in results["blocked_decode"]]
    assert friendly == sorted(friendly)
    assert friendly[-1] > 1.5
    # Cache-averse streaming: host-side stays competitive (<= XG ~everywhere).
    averse = [r["ratio"] for r in results["streaming"]]
    assert min(averse) < 1.05
