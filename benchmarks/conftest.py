"""Benchmark harness conventions.

Every file regenerates one paper artifact (table or figure — see the
experiment index in DESIGN.md) and prints the rows/series the paper
reports. Runs are heavyweight simulations, so each uses
``benchmark.pedantic(rounds=1)`` — the interesting output is the table,
not the wall-clock of the harness itself.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
