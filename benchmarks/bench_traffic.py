"""Ablation — Section 2.4's stated drawback, measured.

"The principle drawbacks of disallowing cache-to-cache communication are
that some transitions will require more hops, and there will be more
traffic through the directory."

This bench compares host-fabric traffic per accelerator op between the
raw accelerator-side cache (which may exchange data directly with
sibling caches) and Crossing Guard (which funnels everything through one
controller) on a sharing-heavy workload, and shows the flip side: the
traffic premium buys a drastically simpler accelerator protocol.
"""

from repro.eval.perf import run_one
from repro.eval.report import format_table
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.workloads.synthetic import PERF_WORKLOADS
from repro.xg.interface import XGVariant


def test_directory_traffic_premium(once):
    def run():
        rows = []
        builder = PERF_WORKLOADS(scale=1)["shared_pingpong"]
        for host in (HostProtocol.MESI, HostProtocol.HAMMER):
            for org, kw in (
                (AccelOrg.ACCEL_SIDE, {}),
                (AccelOrg.XG, {"xg_variant": XGVariant.FULL_STATE}),
            ):
                config = SystemConfig(
                    host=host, org=org, n_cpus=2, n_accel_cores=2, seed=7, **kw
                )
                row, system = run_one(config, builder)
                accel_ops = sum(s.stats.get("ops_completed") for s in system.accel_seqs)
                row["accel_ops"] = accel_ops
                row["msgs_per_op"] = row["host_net_messages"] / accel_ops
                rows.append(row)
        return rows

    rows = once(run)
    print()
    print(
        format_table(
            ["config", "host msgs", "accel ops", "host msgs / accel op", "ticks"],
            [
                (
                    r["config"],
                    r["host_net_messages"],
                    r["accel_ops"],
                    f"{r['msgs_per_op']:.2f}",
                    r["ticks"],
                )
                for r in rows
            ],
            title="directory-path traffic: accel-side vs Crossing Guard "
            "(shared_pingpong)",
        )
    )
    by_label = {r["config"]: r for r in rows}
    for host in ("mesi", "hammer"):
        accel_side = by_label[f"{host}/accel-side"]
        xg = by_label[f"{host}/xg-full-L1"]
        # The premium exists (more messages through the host fabric)...
        assert xg["host_net_messages"] >= accel_side["host_net_messages"]
        # ...but runtime stays within a reasonable envelope of the unsafe
        # baseline — the paper's core performance claim.
        assert xg["ticks"] <= accel_side["ticks"] * 1.25
