"""E8 — Section 2.1: unnecessary PutS traffic (~1-4% of XG->host
bandwidth on a host that evicts S silently) and its suppression register."""

from repro.eval.overheads import run_puts_overhead
from repro.eval.report import format_table


def test_puts_overhead(once):
    rows = once(run_puts_overhead)
    print()
    print(
        format_table(
            ["workload", "suppress", "XG->host msgs", "PutS msgs", "PutS %", "suppressed"],
            [
                (
                    r["workload"],
                    r["suppress_puts"],
                    r["xg_to_host_msgs"],
                    r["puts_msgs"],
                    f"{100 * r['puts_fraction']:.1f}%",
                    r["puts_suppressed"],
                )
                for r in rows
            ],
            title="unnecessary PutS traffic on the Hammer host",
        )
    )
    unsuppressed = [r for r in rows if not r["suppress_puts"]]
    suppressed = [r for r in rows if r["suppress_puts"]]
    # With suppression on, zero PutS reach the host.
    assert all(r["puts_msgs"] == 0 for r in suppressed)
    # Without suppression, workloads that replace shared blocks show the
    # paper's single-digit-percent overhead band.
    fractions = [r["puts_fraction"] for r in unsuppressed]
    assert any(f > 0 for f in fractions)
    assert all(f < 0.25 for f in fractions)
