"""Ablation — Section 2.3.2's time-sharing remark, quantified.

"[Transactional Crossing Guard] may also ease time-sharing of the
Crossing Guard hardware between accelerators, because storage will not
need to be sized for a specific accelerator." Measured as the flush work
a context switch requires after a working-set-building workload.
"""

from repro.eval.perf import run_one
from repro.eval.report import format_table
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.workloads.synthetic import PERF_WORKLOADS
from repro.xg.interface import XGVariant


def test_context_switch_cost(once):
    def run():
        rows = []
        builder = PERF_WORKLOADS(scale=1)["blocked_decode"]
        for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL):
            config = SystemConfig(
                host=HostProtocol.MESI, org=AccelOrg.XG, xg_variant=variant,
                n_cpus=2, n_accel_cores=2, seed=11,
            )
            _row, system = run_one(config, builder)
            cost = system.xg.context_switch_cost()
            rows.append(cost)
        return rows

    rows = once(run)
    print()
    print(
        format_table(
            ["variant", "open txns", "blocks to invalidate", "owned to write back", "total flush ops"],
            [
                (
                    r["variant"],
                    r["open_transactions_to_drain"],
                    r["blocks_to_invalidate"],
                    r["owned_blocks_to_write_back"],
                    r["total_flush_operations"],
                )
                for r in rows
            ],
            title="context-switch (time-sharing) cost after blocked_decode",
        )
    )
    full, txn = rows
    assert txn["blocks_to_invalidate"] == 0
    assert txn["total_flush_operations"] <= full["total_flush_operations"]
    assert full["blocks_to_invalidate"] > 10, "a real working set was resident"
