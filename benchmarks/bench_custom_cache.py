"""Ablation — Section 1's flexibility claim, demonstrated.

"Giving accelerator designers coherence flexibility will lead to better
accelerator performance": a third-party streaming cache with sequential
prefetch — built purely on the standard interface, invisible to the host
— against the plain Table 1 cache.
"""

from repro.eval.report import format_table
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.workloads.synthetic import WorkloadDriver, run_drivers, streaming
from repro.xg.interface import XGVariant


def _run(depth, host, blocks=160, seed=3):
    config = SystemConfig(
        host=host, org=AccelOrg.XG, xg_variant=XGVariant.FULL_STATE,
        n_cpus=1, n_accel_cores=1, accel_prefetch_depth=depth, seed=seed,
    )
    system = build_system(config)
    driver = WorkloadDriver(
        system.sim, system.accel_seqs[0],
        streaming(0x40000, blocks, write_fraction=0.0, seed=seed),
        max_outstanding=2,
    )
    ticks = run_drivers(system.sim, [driver])
    l1 = system.accel_caches[0]
    return {
        "host": host.name.lower(),
        "prefetch_depth": depth,
        "ticks": ticks,
        "prefetches": l1.stats.get("prefetches_issued"),
        "prefetch_hits": l1.stats.get("prefetch_hits"),
        "xg_errors": len(system.error_log),
    }


def test_custom_streaming_cache(once):
    def run():
        rows = []
        for host in (HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF):
            for depth in (0, 2, 4):
                rows.append(_run(depth, host))
        return rows

    rows = once(run)
    print()
    print(
        format_table(
            ["host", "prefetch depth", "ticks", "prefetches", "hits"],
            [
                (r["host"], r["prefetch_depth"], r["ticks"], r["prefetches"], r["prefetch_hits"])
                for r in rows
            ],
            title="customized streaming accelerator cache (pure-interface prefetch)",
        )
    )
    assert all(r["xg_errors"] == 0 for r in rows), "prefetches must be interface-legal"
    for host in ("mesi", "hammer", "mesif"):
        host_rows = {r["prefetch_depth"]: r for r in rows if r["host"] == host}
        # Deeper prefetch must keep speeding streaming up; >=1.5x at depth 4.
        assert host_rows[2]["ticks"] < host_rows[0]["ticks"], host
        assert host_rows[4]["ticks"] < host_rows[2]["ticks"], host
        assert host_rows[0]["ticks"] / host_rows[4]["ticks"] > 1.5, host
