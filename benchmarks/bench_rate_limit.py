"""E9 — Section 2.5: rate limiting a flooding (DoS) accelerator."""

from repro.eval.overheads import run_rate_limit_sweep
from repro.eval.report import format_table


def test_rate_limit_sweep(once):
    rows = once(run_rate_limit_sweep, rates=(None, 64, 16, 4))
    print()
    print(
        format_table(
            ["rate limit", "cpu ops", "cpu mean latency", "adv admitted", "adv throttled"],
            [
                (
                    r["rate_limit"],
                    r["cpu_ops_completed"],
                    f"{r['cpu_mean_latency']:.1f}",
                    r["adversary_requests_admitted"],
                    r["adversary_requests_throttled"],
                )
                for r in rows
            ],
            title="flooding accelerator vs OS rate limit (shared-fabric host)",
        )
    )
    assert all(r["host_safe"] for r in rows)
    unlimited = rows[0]
    tightest = rows[-1]
    # Throttling must kick in and restore CPU latency.
    assert tightest["adversary_requests_throttled"] > 0
    assert tightest["cpu_mean_latency"] < unlimited["cpu_mean_latency"]
