"""E10 — Section 2.5: block-size translation (wide accelerator blocks)."""

from repro.eval.overheads import run_block_translation
from repro.eval.report import format_table


def test_block_translation(once):
    rows = once(run_block_translation, accel_blocks=(128, 256))
    print()
    print(
        format_table(
            ["accel block", "ratio", "loads checked", "wide fetches", "wide WBs", "XG->host msgs"],
            [
                (
                    r["accel_block"],
                    r["ratio"],
                    r["loads_checked"],
                    r["wide_fetches"],
                    r["wide_writebacks"],
                    r["xg_to_host_msgs"],
                )
                for r in rows
            ],
            title="wide-block accelerator over a 64B host (checked random traffic)",
        )
    )
    assert all(r["xg_errors"] == 0 for r in rows)
    assert all(r["loads_checked"] > 0 for r in rows)
    assert all(r["wide_writebacks"] > 0 for r in rows), "evictions must be exercised"
    # Wider blocks amplify host traffic per accelerator transaction.
    assert rows[1]["xg_to_host_msgs"] > rows[0]["xg_to_host_msgs"]
