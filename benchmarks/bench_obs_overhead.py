"""Telemetry overhead accounting: events/sec with observability off/on.

The observability layer's contract is *near-zero cost when off*: with no
``Telemetry`` hub attached every hook is one attribute load plus an
identity check, and with ``metrics=False`` the stat sinks are shared
no-ops. This bench measures all three modes on the full protocol stack
(MESI L1/L2 + Crossing Guard + accelerator caches, where the hooks
actually sit) plus the synthetic engine mix that ``BENCH_engine.json``
tracks across versions, and writes the combined ``BENCH_obs.json``
payload CI archives.

Set ``BENCH_OBS_OUT`` to control where the JSON lands (default:
``BENCH_obs.json`` in the current directory; empty string disables the
write).
"""

import json
import os

from repro.eval.profiling import obs_overhead_report
from repro.eval.report import format_table


def test_obs_overhead(once):
    report = once(
        obs_overhead_report,
        scale=int(os.environ.get("BENCH_OBS_SCALE", "1")),
    )
    rows = [
        (mode, r["events"], r["final_tick"], f"{r['seconds']:.3f}",
         f"{r['events_per_sec']:,.0f}")
        for mode, r in report["xg_stress"].items()
    ]
    print()
    print(
        format_table(
            ["mode", "events", "final tick", "seconds", "events/sec"],
            rows,
            title="telemetry overhead (XG stress workload)",
        )
    )
    for name, pct in report["overhead_pct"].items():
        print(f"  {name}: {pct:+.2f}%")
    print(f"  engine mix (telemetry off): "
          f"{report['engine_events_per_sec']:,.0f} events/sec")

    # All modes must simulate the *same* run: identical event counts and
    # final ticks, only wall-clock may differ. Any drift means telemetry
    # perturbed behavior, which would invalidate every comparison made
    # with it.
    stress = report["xg_stress"]
    ticks = {r["final_tick"] for r in stress.values()}
    events = {r["events"] for r in stress.values()}
    assert len(ticks) == 1, stress
    assert len(events) == 1, stress
    assert all(r["events_per_sec"] > 0 for r in stress.values())
    assert report["engine_events_per_sec"] > 0

    # The campaign fabric (emitter + progress monitor) runs on the hot
    # path of every --live campaign; its budget is ≤2% throughput vs
    # fabric-off. BENCH_FABRIC_TOL widens the gate on noisy shared CI
    # runners without changing the contract locally.
    fabric_tol = float(os.environ.get("BENCH_FABRIC_TOL", "2.0"))
    fabric_pct = report["overhead_pct"]["fabric_vs_default"]
    assert fabric_pct <= fabric_tol, (
        f"fabric overhead {fabric_pct:+.2f}% exceeds {fabric_tol:.1f}% budget"
    )

    # Causal lineage (repro blame) books a cause record on every send,
    # fire, and stall re-queue; its budget is ≤3% throughput vs the
    # lineage-off default. BENCH_LINEAGE_TOL widens the gate on noisy
    # shared CI runners without changing the contract locally.
    lineage_tol = float(os.environ.get("BENCH_LINEAGE_TOL", "3.0"))
    lineage_pct = report["overhead_pct"]["lineage_vs_default"]
    assert lineage_pct <= lineage_tol, (
        f"lineage overhead {lineage_pct:+.2f}% exceeds "
        f"{lineage_tol:.1f}% budget"
    )

    out = os.environ.get("BENCH_OBS_OUT", "BENCH_obs.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {out}")
