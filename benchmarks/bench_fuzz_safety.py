"""E4 — Section 4 safety: fuzzing Crossing Guard with byzantine accelerators.

The paper: "we bombard the Crossing Guard with a stream of random
coherence messages ... this fuzz testing never leads to a crash or
deadlock." Every campaign row must be host-safe, and campaigns that
inject violations must show them reported to the OS.
"""

from repro.eval.experiments import run_fuzz_matrix
from repro.eval.report import format_table


def test_fuzz_safety_matrix(once):
    rows = once(run_fuzz_matrix, seeds=range(2), duration=40_000, cpu_ops=800)
    print()
    print(
        format_table(
            ["host", "variant", "adversary", "seed", "safe", "adv msgs", "violations", "cpu loads ok"],
            [
                (
                    r["host"],
                    r["variant"],
                    r["adversary"],
                    r["seed"],
                    r["host_safe"],
                    r["adversary_messages"],
                    r["violations_total"],
                    r["cpu_loads_checked"],
                )
                for r in rows
            ],
            title="Fuzz safety matrix (paper: no crash or deadlock, ever)",
        )
    )
    assert all(r["host_safe"] for r in rows)
    fuzz_rows = [r for r in rows if r["adversary"] == "fuzz"]
    assert all(r["violations_total"] > 0 for r in fuzz_rows), "violations must be reported"
    assert all(r["cpu_loads_checked"] > 0 for r in rows), "CPUs must keep making progress"
