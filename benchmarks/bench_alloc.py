"""E12c — allocation profile: steady-state allocations per event.

The pooled message / struct-of-arrays event kernel claims the hot loop
allocates nothing it keeps: recycled ``Message`` carriers, integer
cancellation tokens, and per-tick slot buckets replace the per-event
object churn of the tuple-heap kernel. This bench verifies the claim on
the synthetic engine mix after a warmup run primes the pool and caches:
net allocated blocks per event (post-GC) must be ~0, and the payload
records tracemalloc net/peak plus gen-0 collection counts for the CI
trajectory.

Set ``BENCH_ALLOC_OUT`` to control where the JSON lands (default:
``BENCH_alloc.json`` in the current directory; empty string disables
the write).
"""

import json
import os

from repro.eval.profiling import alloc_benchmark_report
from repro.eval.report import format_table

#: A recycled steady state may still retain a handful of blocks per run
#: (fresh counter keys, lane clamps for new (sender, dest) pairs) — but
#: per *event* the retained budget is effectively zero.
MAX_NET_BLOCKS_PER_EVENT = 0.05


def test_alloc_steady_state(once):
    report = once(alloc_benchmark_report)
    rows = [
        (
            name,
            w["events"],
            w["messages"],
            w["net_blocks"],
            f"{w['net_blocks_per_event']:.4f}",
            w["gc_gen0_collections"],
            f"{w['traced_peak_bytes'] / 1024:.1f}",
        )
        for name, w in report["workloads"].items()
    ]
    print()
    print(
        format_table(
            ["workload", "events", "messages", "net blocks", "net/event",
             "gen0 GCs", "peak KiB"],
            rows,
            title="steady-state allocations (after pool warmup)",
        )
    )
    print(f"pool: {report['pool']}")

    out = os.environ.get("BENCH_ALLOC_OUT", "BENCH_alloc.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {out}")

    assert report["worst_net_blocks_per_event"] <= MAX_NET_BLOCKS_PER_EVENT, (
        f"steady-state leak: {report['worst_net_blocks_per_event']:.4f} "
        f"net blocks/event (budget {MAX_NET_BLOCKS_PER_EVENT})"
    )
