"""E12b — engine throughput: events/sec microbenchmark + campaign scaling.

Unlike the other benches this regenerates no paper table; it measures the
*harness itself* — the simulator kernel's raw events/sec on the synthetic
workload mix (ordered ping-pong, unordered storm, timer churn) and the
wall-clock of a small stress campaign at ``workers=1`` vs a parallel
worker pool. The ``BENCH_engine.json`` payload it writes is the
machine-comparable trajectory CI archives on every run.

Set ``BENCH_ENGINE_OUT`` to control where the JSON lands (default:
``BENCH_engine.json`` in the current directory; empty string disables
the write).
"""

import json
import os

from repro.eval.profiling import engine_benchmark_report
from repro.eval.report import format_table


def test_engine_throughput(once):
    report = once(
        engine_benchmark_report,
        scale=int(os.environ.get("BENCH_ENGINE_SCALE", "1")),
        include_campaign=True,
    )
    rows = [
        (name, w["events"], w["messages"], f"{w['seconds']:.3f}",
         f"{w['events_per_sec']:,.0f}")
        for name, w in report["workloads"].items()
    ]
    rows.append(("TOTAL", report["events"], "-", f"{report['seconds']:.3f}",
                 f"{report['events_per_sec']:,.0f}"))
    print()
    print(
        format_table(
            ["workload", "events", "messages", "seconds", "events/sec"],
            rows,
            title="engine throughput (synthetic mix)",
        )
    )
    print(
        format_table(
            ["workers", "seconds", "runs", "speedup"],
            [
                (r["workers"], f"{r['seconds']:.2f}", r["runs"],
                 f"{r['speedup_vs_serial']:.2f}x" if r["speedup_vs_serial"] else "-")
                for r in report["campaign"]["rows"]
            ],
            title="campaign wall-clock (scaling depends on host core count)",
        )
    )
    dispatch = report["dispatch"]
    print(
        format_table(
            ["controller", "count", "entries", "fires", "fires %", "stalls"],
            [
                (ctype, row["controllers"], row["table_entries"], row["fires"],
                 f"{row['fires_pct']:.1f}%", row["stalls"])
                for ctype, row in dispatch["controllers"].items()
            ],
            title=(f"dispatch breakdown ({dispatch['host']} stress, "
                   f"{dispatch['dispatch_mode']} mode, "
                   f"{dispatch['events_per_sec']:,.0f} events/sec)"),
        )
    )

    # Event/message counts are seed-deterministic: any drift here means the
    # engine's behavior changed, not just its speed.
    for name, w in report["workloads"].items():
        assert w["events"] > 0, name
        assert w["final_tick"] > 0, name
    assert report["events_per_sec"] > 0
    campaign = report["campaign"]
    assert all(r["failures"] == 0 for r in campaign["rows"]), campaign["rows"]
    assert dispatch["dispatch_mode"] == "compiled"
    assert dispatch["fires_total"] > 0
    # every fire went through a controller with a non-empty compiled table
    # or an XG/method-driven controller (entries == 0 is legal there)
    assert sum(r["fires"] for r in dispatch["controllers"].values()) == \
        dispatch["fires_total"]

    out = os.environ.get("BENCH_ENGINE_OUT", "BENCH_engine.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {out}")
