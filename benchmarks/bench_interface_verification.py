"""E12 (extension) — exhaustive verification of the accelerator interface.

The paper (Section 4.1): random testing was chosen over model checking
for the full heterogeneous system, but "an industrial implementation of
Crossing Guard would likely include formal verification to complement
stress testing." This bench does the tractable part: a Murphi-style
exhaustive single-address exploration of the interface automaton.
"""

from repro.eval.report import format_table
from repro.verify import explore


def test_interface_verification(once):
    def run():
        return {
            "transactional-style (probe any block)": explore(allow_probe_when_absent=True),
            "full-state-style (probe held blocks)": explore(allow_probe_when_absent=False),
        }

    results = once(run)
    print()
    print(
        format_table(
            ["model", "states", "transitions", "quiescent"],
            [
                (name, s["states"], s["transitions"], s["quiescent_states"])
                for name, s in results.items()
            ],
            title="exhaustive single-address interface verification "
            "(no unspecified receptions, no deadlock, mirror-consistent)",
        )
    )
    for stats in results.values():
        assert stats["states"] > 0
