"""E11 — Guarantee 2c: surrogate responses when the accelerator goes deaf."""

from repro.eval.overheads import run_timeout_recovery
from repro.eval.report import format_table


def test_timeout_recovery(once):
    rows = once(run_timeout_recovery, timeouts=(1000, 4000, 16000))
    print()
    print(
        format_table(
            ["timeout", "safe", "G2c errors", "cpu ops", "cpu mean lat", "cpu max lat"],
            [
                (
                    r["timeout"],
                    r["host_safe"],
                    r["g2c_errors"],
                    r["cpu_ops_completed"],
                    f"{r['cpu_mean_latency']:.0f}",
                    r["cpu_max_latency"],
                )
                for r in rows
            ],
            title="deaf accelerator: host progress rides on the XG timeout",
        )
    )
    assert all(r["host_safe"] for r in rows)
    assert all(r["g2c_errors"] > 0 for r in rows)
    # CPU worst-case latency tracks the timeout setting.
    latencies = [r["cpu_max_latency"] for r in rows]
    assert latencies == sorted(latencies)
    assert rows[0]["cpu_max_latency"] < rows[-1]["timeout"]
