"""E1 — Paper Table 1: the accelerator L1 transition matrix."""

from repro.eval.experiments import run_table1_accel_l1
from repro.eval.report import format_table


def test_table1_accel_l1(once):
    result = once(run_table1_accel_l1)
    rows = [
        (r["state"], r["event"], r["paper"], r["implemented"]) for r in result["rows"]
    ]
    print()
    print(
        format_table(
            ["state", "event", "paper cell", "implemented"],
            rows,
            title="Table 1: accelerator L1 (XG interface)",
        )
    )
    assert all(r["implemented"] != "MISSING" for r in result["rows"])
    assert all(r["implemented"] != "UNEXPECTED" for r in result["rows"])
