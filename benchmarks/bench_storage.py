"""E7 — Section 2.3: Crossing Guard storage, Full State vs Transactional.

Paper data point: for a 256kB accelerator cache with 64B blocks, Full
State XG needs ~16kB of tag storage; Transactional XG only tracks open
transactions.
"""

from repro.eval.overheads import run_storage_comparison
from repro.eval.report import format_table


def test_storage_comparison(once):
    result = once(run_storage_comparison)
    print()
    print(
        format_table(
            ["accel cache (KiB)", "full-state (KiB)", "transactional (KiB)"],
            [
                (
                    r["accel_cache_kib"],
                    f"{r['full_state_kib']:.1f}",
                    f"{r['transactional_kib']:.2f}",
                )
                for r in result["analytic"]
            ],
            title="analytic XG storage vs accelerator cache size",
        )
    )
    print()
    print(
        format_table(
            ["config", "mirror entries", "mirror bits", "TBE high-water", "total bits"],
            [
                (
                    r["config"],
                    r["mirror_entries_high_water"],
                    r["mirror_bits"],
                    r["tbe_high_water"],
                    r["total_bits"],
                )
                for r in result["measured"]
            ],
            title="measured high-water storage (blocked_decode workload)",
        )
    )
    # Paper's 256kB example: ~16kB of tags.
    row_256 = next(r for r in result["analytic"] if r["accel_cache_kib"] == 256)
    assert 12 <= row_256["full_state_kib"] <= 20
    # Transactional storage must not scale with cache size.
    sizes = [r["transactional_kib"] for r in result["analytic"]]
    assert len(set(sizes)) == 1
    # Measured: Transactional strictly smaller than Full State.
    full, txn = result["measured"]
    assert txn["total_bits"] < full["total_bits"]
