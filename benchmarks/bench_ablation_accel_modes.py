"""Ablation — Section 2.1 degenerate accelerator designs.

"If an accelerator benefits more from simplicity than from being able to
implement a full MESI protocol ... an accelerator cache can implement a
VI design by sending only GetM requests. An MSI design is possible by
treating DataE as DataM."

This bench quantifies what those simplifications cost on the same
workloads: the VI design writes back every block dirty and requests
everything exclusively (read-sharing ping-pongs), MSI loses clean-
replacement silence, MESI gets the full optimization surface.
"""

from repro.eval.overheads import _shared_read_builder
from repro.eval.perf import run_one
from repro.eval.report import format_table
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.workloads.synthetic import PERF_WORKLOADS
from repro.xg.interface import XGVariant


def test_accel_mode_ablation(once):
    def run():
        results = {}
        workloads = dict(PERF_WORKLOADS(scale=1))
        workloads["shared_read"] = _shared_read_builder(1)
        for workload_name in ("shared_read", "shared_pingpong", "blocked_decode"):
            rows = []
            for mode in ("mesi", "msi", "vi"):
                config = SystemConfig(
                    host=HostProtocol.MESI, org=AccelOrg.XG,
                    xg_variant=XGVariant.FULL_STATE, accel_mode=mode,
                    n_cpus=2, n_accel_cores=2, seed=7,
                )
                row, system = run_one(config, workloads[workload_name])
                row["mode"] = mode
                row["xg_msgs"] = system.xg.stats.get("xg_to_host_msgs")
                rows.append(row)
            results[workload_name] = rows
        return results

    results = once(run)
    print()
    for workload, rows in results.items():
        base = rows[0]["ticks"]
        print(
            format_table(
                ["accel mode", "ticks", "vs MESI", "XG->host msgs"],
                [
                    (r["mode"], r["ticks"], f"{r['ticks'] / base:.2f}x", r["xg_msgs"])
                    for r in rows
                ],
                title=f"accelerator protocol mode: {workload}",
            )
        )
        print()
    for workload, rows in results.items():
        assert all(r.get("xg_errors", 0) == 0 for r in rows)
    # GetM-only VI must pay for CPU/accelerator READ sharing: every
    # accelerator read steals exclusivity and bounces the CPUs' copies.
    shared = {r["mode"]: r for r in results["shared_read"]}
    assert shared["vi"]["ticks"] > shared["mesi"]["ticks"]
    assert shared["vi"]["xg_msgs"] > shared["mesi"]["xg_msgs"]
