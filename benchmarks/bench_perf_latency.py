"""E6 — Performance figure: accelerator-side op latency per organization."""

from repro.eval.perf import run_perf_sweep
from repro.eval.report import format_table
from repro.host.config import HostProtocol


def test_perf_latency(once):
    results = once(
        run_perf_sweep,
        workloads=("blocked_decode", "shared_pingpong"),
        hosts=(HostProtocol.MESI, HostProtocol.HAMMER),
        scale=1,
    )
    print()
    for workload, rows in results.items():
        print(
            format_table(
                ["config", "accel mean latency", "cpu mean latency"],
                [
                    (
                        r["config"],
                        f"{r['accel_mean_latency']:.1f}",
                        f"{r['cpu_mean_latency']:.1f}",
                    )
                    for r in rows
                ],
                title=f"latency: {workload}",
            )
        )
        print()
    # Host-side pays the crossing on every access, so its accelerator
    # latency must dominate the cached organizations on a reuse-heavy
    # workload.
    for rows in results.values():
        by_config = {r["config"]: r for r in rows}
        for host in ("mesi", "hammer"):
            hostside = by_config[f"{host}/host-side"]["accel_mean_latency"]
            xg = by_config[f"{host}/xg-full-L1"]["accel_mean_latency"]
            assert hostside > xg
