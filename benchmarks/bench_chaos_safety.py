"""Chaos safety: an unreliable XG<->accelerator link vs the hardened XG.

Extends the E4 safety claim to a harsher fault model: on top of a
byzantine-capable accelerator, the *link itself* drops, replays, delays,
and corrupts messages. Every campaign row must stay host-safe with CPU
loads still data-checked, and every fault XG could not silently recover
must be visible in the OS error log or its recovery counters.
"""

from repro.eval.report import format_table
from repro.testing.chaos import run_chaos_matrix

RECOVERY_KEYS = (
    "probe_retries",
    "duplicates_sunk",
    "retry_echoes_absorbed",
    "quarantine_surrogates",
    "requests_dropped_disabled",
)


def test_chaos_safety_matrix(once):
    rows = once(run_chaos_matrix, rate=0.2, duration=40_000, cpu_ops=600)
    print()
    print(
        format_table(
            [
                "host", "variant", "fault", "safe", "faults", "retries",
                "dups sunk", "violations", "cpu loads ok",
            ],
            [
                (
                    r["host"],
                    r["variant"],
                    r["fault"],
                    r["host_safe"],
                    r["faults_total"],
                    r["probe_retries"],
                    r["duplicates_sunk"],
                    r["violations_total"],
                    r["cpu_loads_value_checked"],
                )
                for r in rows
            ],
            title="Chaos safety matrix (host survives an unreliable interconnect)",
        )
    )
    assert all(r["host_safe"] for r in rows), [
        (r["host"], r["variant"], r["fault"], r["crash_detail"]) for r in rows
        if not r["host_safe"]
    ]
    assert all(r["faults_total"] > 0 for r in rows), "campaigns must inject faults"
    assert all(r["cpu_loads_value_checked"] > 0 for r in rows)
    assert all(
        sum(r[key] for key in RECOVERY_KEYS) + r["violations_total"] > 0 for r in rows
    ), "every fault must be recovered or surfaced"
