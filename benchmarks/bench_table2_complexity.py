"""E2 — Section 2.1/2.4: protocol complexity comparison."""

from repro.eval.experiments import run_complexity_comparison
from repro.eval.report import format_table


def test_complexity_comparison(once):
    rows = once(run_complexity_comparison)
    printable = [
        (
            r["controller"],
            r["stable_states"],
            r["transient_states"],
            r["transitions"],
            r["incoming_requests"],
            r["incoming_responses"],
        )
        for r in rows
    ]
    print()
    print(
        format_table(
            ["controller", "stable", "transient", "transitions", "reqs in", "resps in"],
            printable,
            title="Protocol complexity: accelerator interface vs host protocols",
        )
    )
    accel = rows[0]
    mesi = rows[1]
    # The paper's headline: 4 stable + 1 transient for the accel cache vs
    # six+ transients at the host MESI L1.
    assert accel["stable_states"] == 4 and accel["transient_states"] == 1
    assert mesi["transient_states"] >= 6
