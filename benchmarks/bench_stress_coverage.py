"""E3 — Section 4.1: random protocol stress test + transition coverage.

The paper runs 240M+ load/check pairs per configuration over 22 compute
years; this bench runs a laptop-scale campaign with the same structure
(tiny caches, few addresses, random message latencies, all 12
configurations) and reports coverage the same way: state/event pairs
visited vs possible, per controller type.
"""

from repro.eval.experiments import run_stress_coverage
from repro.eval.report import format_table


def test_stress_and_coverage(once):
    result = once(run_stress_coverage, seeds=range(3), ops_per_run=1500)
    failures = [r for r in result["runs"] if not r["passed"]]
    print()
    print(
        format_table(
            ["controller", "visited", "possible", "coverage", "missing"],
            [
                (
                    c["controller"],
                    c["visited"],
                    c["possible"],
                    f"{c['fraction']:.1%}",
                    ", ".join(c["missing"][:4]) + ("..." if len(c["missing"]) > 4 else ""),
                )
                for c in result["coverage"]
            ],
            title=f"Stress coverage over {len(result['runs'])} runs "
            f"({len(failures)} failures; paper: none)",
        )
    )
    assert not failures, failures
    by_name = {c["controller"]: c for c in result["coverage"]}
    # Accelerator-facing controllers and the inclusive hosts: fully covered.
    for full in (
        "accel_l1", "accel_l2", "mesi_l1", "mesi_l2", "mesif_l2", "hammer_directory",
    ):
        assert by_name[full]["fraction"] == 1.0, by_name[full]
    # A handful of rare-state conjunctions remain statistical (each is
    # covered by a directed test in tests/test_*_races.py).
    assert by_name["hammer_cache"]["fraction"] >= 0.9, by_name["hammer_cache"]
    assert by_name["mesif_l1"]["fraction"] >= 0.9, by_name["mesif_l1"]
